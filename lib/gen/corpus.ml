module Json = Skope_report.Json
module Value = Skope_bet.Value

let parmap ~jobs f n =
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f i);
          go ()
        end
      in
      go ()
    in
    let doms = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join doms;
    Array.to_list results
    |> List.map (function Some x -> x | None -> assert false)
  end

let generate ?config ?archetype ?(jobs = 1) ~seed ~count () =
  parmap ~jobs (fun index -> Gen.generate ?config ?archetype ~seed ~index ()) count

let file_of_case (c : Gen.case) = c.Gen.name ^ ".skope"

let value_json = function
  | Value.I i -> Json.Int i
  | Value.F f -> Json.Float f
  | Value.B b -> Json.Bool b

let config_json (c : Gen.config) =
  Json.Obj
    [
      ("depth", Json.Int c.Gen.depth);
      ("max_stmts", Json.Int c.Gen.max_stmts);
      ("stmt_budget", Json.Int c.Gen.stmt_budget);
      ("trip_lo", Json.Int c.Gen.trip_lo);
      ("trip_hi", Json.Int c.Gen.trip_hi);
      ("size_lo", Json.Int c.Gen.size_lo);
      ("size_hi", Json.Int c.Gen.size_hi);
      ("ranks", Json.Int c.Gen.ranks);
      ("funcs", Json.Int c.Gen.funcs);
      ("sim_iters", Json.Int c.Gen.sim_iters);
      ("mix", Json.String (Fmt.str "%a" Archetype.pp_mix c.Gen.mix));
    ]

let case_json (c : Gen.case) =
  Json.Obj
    [
      ("file", Json.String (file_of_case c));
      ("index", Json.Int c.Gen.index);
      ("archetype", Json.String (Archetype.to_string c.Gen.archetype));
      ("case_seed", Json.String (Fmt.str "0x%Lx" c.Gen.case_seed));
      ("program", Json.String c.Gen.name);
      ("inputs", Json.Obj (List.map (fun (k, v) -> (k, value_json v)) c.Gen.inputs));
    ]

let manifest_json ?archetype ~config ~seed cases =
  Json.Obj
    (List.concat
       [
         [
           ("schema", Json.String "skope-corpus/1");
           ("seed", Json.String (Fmt.str "%Ld" seed));
           ("count", Json.Int (List.length cases));
         ];
         (match archetype with
         | Some a -> [ ("archetype", Json.String (Archetype.to_string a)) ]
         | None -> []);
         [ ("config", config_json (Gen.clamp config)) ];
         [ ("cases", Json.List (List.map case_json cases)) ];
       ])

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)

let write ?archetype ~config ~seed ~dir cases =
  mkdir_p dir;
  let files =
    List.map
      (fun c ->
        let file = file_of_case c in
        write_file (Filename.concat dir file) (Gen.to_source c);
        file)
      cases
  in
  write_file
    (Filename.concat dir "corpus.json")
    (Json.to_string (manifest_json ?archetype ~config ~seed cases) ^ "\n");
  files

let read_manifest ~dir =
  let path = Filename.concat dir "corpus.json" in
  if not (Sys.file_exists path) then
    Error (Fmt.str "no corpus manifest at %s (generate one with `skope gen`)" path)
  else
    let contents =
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          really_input_string ic (in_channel_length ic))
    in
    match Json.of_string contents with
    | Error e -> Error (Fmt.str "%s: invalid JSON: %s" path e)
    | Ok j -> (
      match Json.member "cases" j with
      | Some (Json.List cases) -> (
        try
          Ok
            (List.map
               (fun cj ->
                 let str k =
                   match Option.bind (Json.member k cj) Json.to_string_opt with
                   | Some s -> s
                   | None -> failwith (Fmt.str "case without %S" k)
                 in
                 let inputs =
                   match Json.member "inputs" cj with
                   | Some (Json.Obj kvs) ->
                     List.map
                       (fun (k, v) ->
                         match v with
                         | Json.Int i -> (k, Value.I i)
                         | Json.Float f -> (k, Value.F f)
                         | Json.Bool b -> (k, Value.B b)
                         | _ -> failwith (Fmt.str "bad input %S" k))
                       kvs
                   | _ -> []
                 in
                 (str "file", str "program", inputs))
               cases)
        with Failure m -> Error (Fmt.str "%s: %s" path m))
      | _ -> Error (Fmt.str "%s: no cases array" path))
