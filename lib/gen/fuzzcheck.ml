(** Differential fuzzing harness.  See the mli for the gate
    contract. *)

open Skope_skeleton
module Json = Skope_report.Json
module D = Skope_lint.Diagnostic

type gate = Roundtrip | Lint | Audit | Parity | Sim

let gate_name = function
  | Roundtrip -> "roundtrip"
  | Lint -> "lint"
  | Audit -> "audit"
  | Parity -> "parity"
  | Sim -> "sim"

type failure = {
  index : int;
  archetype : Archetype.t;
  gate : gate;
  detail : string;
  repro : string;
}

type report = {
  total : int;
  gates_per_case : int;
  failures : failure list;
  by_archetype : (Archetype.t * int) list;
}

let n_gates = 5

(* --- reproducer ------------------------------------------------------- *)

let repro_command ?(config = Gen.default) ?archetype ~seed ~index () =
  let c = Gen.clamp config and d = Gen.clamp Gen.default in
  let b = Buffer.create 80 in
  Buffer.add_string b (Fmt.str "skope fuzz --seed %Ld --index %d" seed index);
  (match archetype with
  | Some a -> Buffer.add_string b (Fmt.str " --archetype %s" (Archetype.to_string a))
  | None -> ());
  let flag name v dv fmt = if v <> dv then Buffer.add_string b (Fmt.str fmt name v) in
  flag "depth" c.Gen.depth d.Gen.depth " --%s %d";
  flag "stmts" c.Gen.max_stmts d.Gen.max_stmts " --%s %d";
  flag "funcs" c.Gen.funcs d.Gen.funcs " --%s %d";
  flag "ranks" c.Gen.ranks d.Gen.ranks " --%s %d";
  if (c.Gen.trip_lo, c.Gen.trip_hi) <> (d.Gen.trip_lo, d.Gen.trip_hi) then
    Buffer.add_string b (Fmt.str " --trips %d:%d" c.Gen.trip_lo c.Gen.trip_hi);
  if (c.Gen.size_lo, c.Gen.size_hi) <> (d.Gen.size_lo, d.Gen.size_hi) then
    Buffer.add_string b (Fmt.str " --sizes %d:%d" c.Gen.size_lo c.Gen.size_hi);
  if archetype = None && c.Gen.mix <> d.Gen.mix then
    Buffer.add_string b (Fmt.str " --mix %s" (Fmt.str "%a" Archetype.pp_mix c.Gen.mix));
  Buffer.contents b

(* --- gates ------------------------------------------------------------ *)

let fail ~case ~repro gate fmt =
  Fmt.kstr
    (fun detail ->
      {
        index = case.Gen.index;
        archetype = case.Gen.archetype;
        gate;
        detail;
        repro;
      })
    fmt

let guard ~case ~repro gate f =
  match f () with
  | [] -> []
  | fs -> fs
  | exception e ->
    [ fail ~case ~repro gate "%s crashed: %s" (gate_name gate) (Printexc.to_string e) ]

let check_roundtrip ~case ~repro () =
  let p = case.Gen.program in
  let text = Pretty.to_string p in
  match Parser.parse ~file:(case.Gen.name ^ ".skope") text with
  | exception e ->
    [ fail ~case ~repro Roundtrip "pretty output does not reparse: %s"
        (Printexc.to_string e) ]
  | p2 ->
    let ast_fail =
      if Equal.program ~fission_mem:true p p2 then []
      else
        let why =
          Option.value ~default:"(no localized diff)"
            (Equal.first_diff ~fission_mem:true p p2)
        in
        [ fail ~case ~repro Roundtrip "reparsed AST differs: %s" why ]
    in
    let text2 = Pretty.to_string p2 in
    let pp_fail =
      if String.equal text text2 then []
      else [ fail ~case ~repro Roundtrip "pretty-print is not idempotent" ]
    in
    ast_fail @ pp_fail

let errors_of ds =
  List.filter (fun d -> d.D.severity = D.Error) ds

let check_lint ~case ~repro () =
  let ds = Skope_lint.Engine.run ~inputs:case.Gen.inputs case.Gen.program in
  match errors_of ds with
  | [] -> []
  | e :: _ ->
    [ fail ~case ~repro Lint "lint error %s: %s" e.D.code e.D.message ]

let check_audit ~case ~repro () =
  let r = Skope_lint.Audit.run ~inputs:case.Gen.inputs case.Gen.program in
  match errors_of r.Skope_lint.Audit.diags with
  | [] -> []
  | e :: _ ->
    [ fail ~case ~repro Audit "audit error %s: %s" e.D.code e.D.message ]

let machine = Skope_hw.Machines.bgq
let lib_work = Skope_hw.Libmix.work_fn Skope_hw.Libmix.default

let build_case case =
  Skope_bet.Build.build ~lib_work ~inputs:case.Gen.inputs case.Gen.program

let check_parity ~case ~repro () =
  let built = build_case case in
  let warn_fail =
    match built.Skope_bet.Build.warnings with
    | [] -> []
    | w :: _ -> [ fail ~case ~repro Parity "BET build warning: %s" w ]
  in
  let tree = Skope_analysis.Perf.project machine built in
  let arena =
    Skope_analysis.Arena_price.price (Skope_bet.Arena.of_build built) machine
  in
  let t_tree = tree.Skope_analysis.Perf.total_time
  and t_arena = Skope_analysis.Arena_price.total_time arena in
  let time_fail =
    if Int64.bits_of_float t_tree = Int64.bits_of_float t_arena then []
    else
      [ fail ~case ~repro Parity
          "total time diverges: tree %.17g vs arena %.17g" t_tree t_arena ]
  in
  let blocks_fail =
    if tree.Skope_analysis.Perf.blocks = Skope_analysis.Arena_price.blocks arena
    then []
    else [ fail ~case ~repro Parity "ranked block statistics differ" ]
  in
  warn_fail @ time_fail @ blocks_fail

let check_sim ~sim_bound ~case ~repro () =
  let built = build_case case in
  let projected = Skope_analysis.Perf.project machine built in
  let t_model = projected.Skope_analysis.Perf.total_time in
  let config =
    Skope_sim.Interp.default_config ~machine ~libmix:Skope_hw.Libmix.default
      ~seed:case.Gen.case_seed ()
  in
  let sim = Skope_sim.Interp.run ~config ~inputs:case.Gen.inputs case.Gen.program in
  let t_sim = sim.Skope_sim.Interp.total_time in
  if not (Float.is_finite t_model) || t_model <= 0. then
    [ fail ~case ~repro Sim "projected time %g is not finite positive" t_model ]
  else if not (Float.is_finite t_sim) || t_sim <= 0. then
    [ fail ~case ~repro Sim "simulated time %g is not finite positive" t_sim ]
  else
    let ratio = if t_model > t_sim then t_model /. t_sim else t_sim /. t_model in
    if ratio > sim_bound then
      [ fail ~case ~repro Sim
          "model %.3g s vs sim %.3g s: ratio %.3g exceeds bound %g" t_model
          t_sim ratio sim_bound ]
    else []

let check_case ?(sim_bound = 1e4) ~repro case =
  List.concat
    [
      guard ~case ~repro Roundtrip (check_roundtrip ~case ~repro);
      guard ~case ~repro Lint (check_lint ~case ~repro);
      guard ~case ~repro Audit (check_audit ~case ~repro);
      guard ~case ~repro Parity (check_parity ~case ~repro);
      guard ~case ~repro Sim (check_sim ~sim_bound ~case ~repro);
    ]

let run ?(config = Gen.default) ?archetype ?(jobs = 1) ?(sim_bound = 1e4) ~seed
    ~count () =
  let results =
    Corpus.parmap ~jobs
      (fun index ->
        let case = Gen.generate ~config ?archetype ~seed ~index () in
        let repro = repro_command ~config ?archetype ~seed ~index () in
        (case.Gen.archetype, check_case ~sim_bound ~repro case))
      count
  in
  let by_archetype =
    List.map
      (fun a ->
        (a, List.length (List.filter (fun (a', _) -> a' = a) results)))
      Archetype.all
    |> List.filter (fun (_, n) -> n > 0)
  in
  {
    total = count;
    gates_per_case = n_gates;
    failures = List.concat_map snd results;
    by_archetype;
  }

let failure_json f =
  Json.Obj
    [
      ("index", Json.Int f.index);
      ("archetype", Json.String (Archetype.to_string f.archetype));
      ("gate", Json.String (gate_name f.gate));
      ("detail", Json.String f.detail);
      ("repro", Json.String f.repro);
    ]

let report_json ~seed r =
  Json.Obj
    [
      ("schema", Json.String "skope-fuzz/1");
      ("seed", Json.String (Fmt.str "%Ld" seed));
      ("total", Json.Int r.total);
      ("gates_per_case", Json.Int r.gates_per_case);
      ("failed", Json.Int (List.length r.failures));
      ( "by_archetype",
        Json.Obj
          (List.map
             (fun (a, n) -> (Archetype.to_string a, Json.Int n))
             r.by_archetype) );
      ("failures", Json.List (List.map failure_json r.failures));
    ]
