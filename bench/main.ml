(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (§VII), plus the quantitative claims made in the
   abstract and §IV (BET size, input-size-independent analysis time,
   mean selection quality).  See DESIGN.md §5 for the experiment
   index and EXPERIMENTS.md for paper-vs-measured commentary.

   Everything prints to stdout; `dune exec bench/main.exe`. *)

open Core
module P = Pipeline
module BS = Analysis.Blockstat
module HS = Analysis.Hotspot
module Q = Analysis.Quality
module Table = Report.Table
module Chart = Report.Chart

let bgq = Hw.Machines.bgq
let xeon = Hw.Machines.xeon

(* Optional CSV artifact directory: `dune exec bench/main.exe -- --csv DIR`. *)
let csv_dir : string option ref = ref None

let emit_csv ~file (t : Table.t) =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let oc = open_out (Filename.concat dir file) in
    output_string oc (Table.to_csv t);
    close_out oc

let emit_table ~file t =
  Table.print t;
  emit_csv ~file t

let section id title =
  Fmt.pr "@.============================================================@.";
  Fmt.pr "== [%s] %s@." id title;
  Fmt.pr "============================================================@."

let pct x = Fmt.str "%.1f%%" (100. *. x)

(* ------------------------------------------------------------------ *)
(* Cached pipeline runs: every (workload, machine) pair simulated once. *)

let runs : (string * P.run) list ref = ref []

let run_of name (machine : Hw.Machine.t) =
  let key = name ^ "/" ^ machine.Hw.Machine.name in
  match List.assoc_opt key !runs with
  | Some r -> r
  | None ->
    let t0 = Unix.gettimeofday () in
    let r = P.run ~machine (Workloads.Registry.find_exn name) in
    Fmt.epr "[bench] %s: simulated+analyzed in %.2fs@." key
      (Unix.gettimeofday () -. t0);
    runs := (key, r) :: !runs;
    r

let top_names blocks k =
  HS.top_k ~k blocks |> List.map (fun (b : BS.t) -> b.BS.name)

let rank_table ~title (r : P.run) ~k =
  let prof = top_names r.P.measured.blocks k in
  let modl = top_names r.P.projection.blocks k in
  let rows =
    List.mapi
      (fun i p ->
        let m = List.nth_opt modl i in
        let mname = Option.value ~default:"-" m in
        [
          string_of_int (i + 1);
          p;
          mname;
          (if String.equal p mname then "="
           else if List.mem p modl then "~"
           else "x");
        ])
      prof
  in
  Table.make ~title
    ~headers:[ "rank"; "Prof (measured)"; "Modl (projected)"; "agree" ]
    ~aligns:Table.[ Right; Left; Left; Left ]
    rows

let set_overlap a b k =
  let sa = top_names a k and sb = top_names b k in
  List.length (List.filter (fun x -> List.mem x sb) sa)

(* ------------------------------------------------------------------ *)

let fig2_fig3 () =
  section "fig2_fig3"
    "Pedagogical example: skeleton, BST, BET and hot path  [paper Figs. 2-3]";
  let w = Workloads.Registry.find_exn "pedagogical" in
  let program, inputs = w.Workloads.Registry.make ~scale:1.0 in
  Fmt.pr "--- (a) code skeleton ---------------------------------------@.";
  Fmt.pr "%s@." (Skeleton.Pretty.to_string program);
  Fmt.pr "--- (b) block skeleton tree (static blocks) -----------------@.";
  let bst = Bet.Bst.build program in
  List.iter
    (fun (b : Bet.Bst.block_info) ->
      Fmt.pr "  [%a] %s (in %s, %d static instructions)@." Bet.Block_id.pp
        b.Bet.Bst.id b.Bet.Bst.name b.Bet.Bst.func b.Bet.Bst.size)
    (Bet.Bst.blocks bst);
  Fmt.pr "@.--- (c) Bayesian execution tree -----------------------------@.";
  (* Note the two mounts of foo under different knob contexts, with
     their probabilities.  The example is tiny, so the hot spot
     selection relaxes the leanness criterion. *)
  let r =
    P.run
      ~criteria:{ HS.time_coverage = 0.9; code_leanness = 0.5 }
      ~machine:bgq w
  in
  Fmt.pr "@[<v>%a@]@." (Bet.Node.pp ~indent:2) r.P.built.Bet.Build.root;
  Fmt.pr "--- Fig. 3: merged hot path ---------------------------------@.";
  (match P.hot_path r with
  | Some path ->
    Fmt.pr "%a@."
      (Analysis.Hotpath.pp ~total_time:r.P.projection.Analysis.Perf.total_time)
      path;
    let chains = Analysis.Hotpath.paths path in
    Fmt.pr "(%d individual hot-spot paths merged into %d nodes)@."
      (List.length chains)
      (Analysis.Hotpath.size path)
  | None -> Fmt.pr "(no hot path)@.");
  ignore inputs

let table1 () =
  section "table1"
    "Hot spot selections: SORD (top 10, BG/Q & Xeon), SRAD, CHARGEI, \
     STASSUIJ  [paper Table I]";
  let sb = run_of "sord" bgq and sx = run_of "sord" xeon in
  emit_table ~file:"table1_sord_bgq.csv"
    (rank_table ~title:"SORD on BG/Q (top 10):" sb ~k:10);
  Fmt.pr "@.";
  emit_table ~file:"table1_sord_xeon.csv"
    (rank_table ~title:"SORD on Xeon (top 10):" sx ~k:10);
  Fmt.pr
    "@.Legend: '=' same rank, '~' in model top-k at another rank, 'x' missed.@.";
  List.iter
    (fun (name, k) ->
      Fmt.pr "@.";
      Table.print
        (rank_table
           ~title:(Fmt.str "%s on BG/Q (top %d):" (String.uppercase_ascii name) k)
           (run_of name bgq) ~k))
    [ ("srad", 3); ("chargei", 5); ("stassuij", 2) ];
  (* Measured coverages of the named spots, paper-style commentary. *)
  let srad = run_of "srad" bgq in
  let top3 = HS.top_k ~k:3 srad.P.measured.blocks in
  let total = BS.total_time srad.P.measured.blocks in
  Fmt.pr "@.SRAD top-3 measured coverages (paper: 37%%, 28%%, 25%%): %s@."
    (String.concat ", "
       (List.map (fun (b : BS.t) -> pct (b.BS.time /. total)) top3));
  let chargei = run_of "chargei" bgq in
  let top2 = HS.top_k ~k:2 chargei.P.measured.blocks in
  let totalc = BS.total_time chargei.P.measured.blocks in
  Fmt.pr "CHARGEI top-2 measured coverages (paper: 44%%, 38%%): %s@."
    (String.concat ", "
       (List.map (fun (b : BS.t) -> pct (b.BS.time /. totalc)) top2));
  let st = run_of "stassuij" bgq in
  let top2s = HS.top_k ~k:2 st.P.measured.blocks in
  let totals = BS.total_time st.P.measured.blocks in
  Fmt.pr "STASSUIJ top-2 measured coverages (paper: 68%%, 23%%): %s@."
    (String.concat ", "
       (List.map (fun (b : BS.t) -> pct (b.BS.time /. totals)) top2s));
  (* The STASSUIJ vectorization anecdote: the model overestimates the
     sparse AXPY because it prices it scalar while XL vectorizes it. *)
  let axpy_share blocks =
    let total = BS.total_time blocks in
    match
      List.find_opt (fun (b : BS.t) -> String.equal b.BS.name "sparse_axpy") blocks
    with
    | Some b -> b.BS.time /. total
    | None -> 0.
  in
  Fmt.pr
    "STASSUIJ sparse_axpy share: measured %s vs projected %s (paper: model \
     overestimates the vectorized spot)@."
    (pct (axpy_share st.P.measured.blocks))
    (pct (axpy_share st.P.projection.blocks))

let table2 () =
  section "table2" "CFD top-10 hot spots on BG/Q  [paper Table II]";
  let r = run_of "cfd" bgq in
  emit_table ~file:"table2_cfd_bgq.csv"
    (rank_table ~title:"CFD on BG/Q (top 10):" r ~k:10);
  (* The division anecdote (§VII-B): compute_velocity is underestimated
     because the model prices divisions as ordinary flops. *)
  let share blocks name =
    let total = BS.total_time blocks in
    match List.find_opt (fun (b : BS.t) -> String.equal b.BS.name name) blocks with
    | Some b -> b.BS.time /. total
    | None -> 0.
  in
  Fmt.pr
    "@.compute_velocity share: projected %s vs measured %s (paper: expected \
     <3%%, took 15%% — divisions expand on BG/Q)@."
    (pct (share r.P.projection.blocks "compute_velocity"))
    (pct (share r.P.measured.blocks "compute_velocity"))

let quality_series (r_target : P.run) (r_other : P.run) ~k =
  let measured = r_target.P.measured.blocks in
  let prof_q = List.init k (fun _ -> 1.0) in
  let cross =
    Q.curve ~measured ~candidate:r_other.P.measured.blocks ~k
  in
  let model = Q.curve ~measured ~candidate:r_target.P.projection.blocks ~k in
  (prof_q, cross, model)

let fig4 () =
  section "fig4"
    "SORD selection quality vs number of hot spots  [paper Fig. 4]";
  let sb = run_of "sord" bgq and sx = run_of "sord" xeon in
  let k = 10 in
  let _, cross_b, model_b = quality_series sb sx ~k in
  let _, cross_x, model_x = quality_series sx sb ~k in
  print_string
    (Chart.curves
       ~title:
         "BG/Q: Prof.Q = quality of native profile (1.0 by definition);\n\
          Prof.Q(x) = Xeon-suggested spots used for BG/Q; Modl.Q = model \
          projection"
       ~ylabel:"selection quality"
       ~series:
         [
           ("Prof.Q", List.init k (fun _ -> 1.0));
           ("Prof.Q(x)", cross_b);
           ("Modl.Q", model_b);
         ]
       ());
  Fmt.pr "@.";
  print_string
    (Chart.curves ~title:"Xeon mirror:" ~ylabel:"selection quality"
       ~series:
         [
           ("Prof.X", List.init k (fun _ -> 1.0));
           ("Prof.X(q)", cross_x);
           ("Modl.X", model_x);
         ]
       ());
  Fmt.pr
    "@.Top-10 hot spot overlap between the two machines (measured): %d of 10 \
     (paper: 4 of 10; rank agreement %.2f)@."
    (set_overlap sb.P.measured.blocks sx.P.measured.blocks 10)
    (Q.rank_agreement ~a:sb.P.measured.blocks ~b:sx.P.measured.blocks ~k:10)

let coverage_figure id title name machine =
  section id title;
  let r = run_of name machine in
  let k = 10 in
  let prof = List.init k (fun i -> P.prof_coverage r ~k:(i + 1)) in
  let modl_p = List.init k (fun i -> P.modl_projected_coverage r ~k:(i + 1)) in
  let modl_m = List.init k (fun i -> P.modl_measured_coverage r ~k:(i + 1)) in
  emit_csv ~file:(id ^ "_" ^ name ^ "_coverage.csv")
    (Table.make
       ~headers:[ "k"; "prof"; "modl_p"; "modl_m" ]
       (List.init k (fun i ->
            [
              string_of_int (i + 1);
              Fmt.str "%.6f" (List.nth prof i);
              Fmt.str "%.6f" (List.nth modl_p i);
              Fmt.str "%.6f" (List.nth modl_m i);
            ])));
  print_string
    (Chart.curves
       ~title:
         "cumulative run-time coverage of the first k hot spots\n\
          (Prof = measured selection; Modl(p) = projected coverage of model \
          selection; Modl(m) = measured coverage of model selection)"
       ~ylabel:"coverage"
       ~series:[ ("Prof", prof); ("Modl(p)", modl_p); ("Modl(m)", modl_m) ]
       ());
  Fmt.pr "@.selection quality Q(k=%d): %s@." k (pct (P.model_quality r ~k))

let fig5 () =
  coverage_figure "fig5"
    "SORD runtime coverage curves on BG/Q  [paper Fig. 5]" "sord" bgq

let breakdown_figure id title machine =
  section id title;
  let r = run_of "sord" machine in
  let spots = HS.top_k ~k:10 r.P.projection.blocks in
  let items =
    List.map
      (fun (b : BS.t) ->
        let tc_only = b.BS.tc -. b.BS.t_overlap in
        let tm_only = b.BS.tm -. b.BS.t_overlap in
        ( b.BS.name,
          [
            ('C', Float.max 0. tc_only *. 1e3);
            ('O', Float.max 0. b.BS.t_overlap *. 1e3);
            ('M', Float.max 0. tm_only *. 1e3);
          ] ))
      spots
  in
  print_string
    (Chart.stacked_bars
       ~title:
         "per-hot-spot projected time (ms): C = compute only, O = overlapped, \
          M = memory only"
       items);
  let mem_share =
    let tc, tm =
      List.fold_left
        (fun (c, m) (b : BS.t) -> (c +. b.BS.tc, m +. b.BS.tm))
        (0., 0.) spots
    in
    tm /. (tc +. tm)
  in
  Fmt.pr "@.aggregate memory share of the top-10: %s@." (pct mem_share)

let fig6 () =
  breakdown_figure "fig6"
    "SORD per-hot-spot performance breakdown on BG/Q  [paper Fig. 6]" bgq

let fig7 () =
  breakdown_figure "fig7"
    "SORD per-hot-spot breakdown on Xeon (memory share grows)  [paper Fig. 7]"
    xeon

let fig8 () =
  section "fig8"
    "SORD profiled issue rate and instructions per L1 miss  [paper Fig. 8]";
  let r = run_of "sord" bgq in
  let spots = HS.top_k ~k:10 r.P.measured.blocks in
  let rows =
    List.filter_map
      (fun (b : BS.t) ->
        match Sim.Counters.find r.P.measured.counters b.BS.block with
        | None -> None
        | Some e ->
          Some
            [
              b.BS.name;
              Fmt.str "%.3f" (Sim.Counters.issue_rate e);
              (let ipm = Sim.Counters.instrs_per_l1_miss e in
               if Float.is_finite ipm then Fmt.str "%.1f" ipm else "inf");
            ])
      spots
  in
  Table.print
    (Table.make
       ~title:"(measured by the simulator's hardware counters)"
       ~headers:[ "hot spot"; "issue rate (instr/cyc)"; "instr / L1 miss" ]
       ~aligns:Table.[ Left; Right; Right ]
       rows);
  Fmt.pr
    "@.(paper: the later hot spots show pipeline stalls and a dramatic drop \
     in instructions per L1 miss)@."

let fig9 () =
  section "fig9" "SORD hot path on BG/Q  [paper Fig. 9]";
  let r = run_of "sord" bgq in
  match P.hot_path r with
  | None -> Fmt.pr "no hot path (empty selection)@."
  | Some path ->
    Fmt.pr "%a@."
      (Analysis.Hotpath.pp ~total_time:r.P.projection.Analysis.Perf.total_time)
      path;
    Fmt.pr
      "(%d nodes; %d hot-spot invocations; '*' marks hot spots; x is the \
       expected repetition count, p the reaching probability)@."
      (Analysis.Hotpath.size path)
      (Analysis.Hotpath.hot_invocations path)

let fig10 () =
  coverage_figure "fig10" "CFD coverage curves on BG/Q  [paper Fig. 10]" "cfd"
    bgq

let fig11 () =
  coverage_figure "fig11" "SRAD coverage curves on BG/Q  [paper Fig. 11]"
    "srad" bgq

let fig12 () =
  coverage_figure "fig12"
    "CHARGEI coverage curves on BG/Q  [paper Fig. 12]" "chargei" bgq

let fig13 () =
  coverage_figure "fig13"
    "STASSUIJ coverage curves on BG/Q  [paper Fig. 13]" "stassuij" bgq

let portability () =
  section "portability"
    "Hot spots are not portable across machines  [paper SSI/SSVII-A]";
  let rows =
    List.map
      (fun name ->
        let rb = run_of name bgq and rx = run_of name xeon in
        [
          name;
          string_of_int (set_overlap rb.P.measured.blocks rx.P.measured.blocks 10);
          Fmt.str "%.2f"
            (Q.rank_agreement ~a:rb.P.measured.blocks ~b:rx.P.measured.blocks
               ~k:10);
          pct
            (Q.quality ~measured:rb.P.measured.blocks
               ~candidate:rx.P.measured.blocks ~k:10);
        ])
      [ "sord"; "cfd"; "srad"; "chargei"; "stassuij" ]
  in
  emit_table ~file:"portability.csv"
    (Table.make
       ~title:
         "top-10 measured hot spots: BG/Q vs Xeon (paper: SORD shares only \
          4/10, in different order)"
       ~headers:
         [ "workload"; "common of 10"; "rank agreement"; "Xeon spots used on BG/Q" ]
       ~aligns:Table.[ Left; Right; Right; Right ]
       rows)

let bet_size () =
  section "bet_size"
    "BET size vs source size  [paper SSIV-B: avg 0.88x, never > 2x]";
  let rows, ratios =
    List.fold_left
      (fun (rows, ratios) name ->
        let w = Workloads.Registry.find_exn name in
        let a = P.analyze ~machine:bgq ~workload:w ~scale:0.1 () in
        let src = Skeleton.Ast.program_size a.P.a_program in
        let nodes = a.P.a_built.Bet.Build.node_count in
        let ratio = float_of_int nodes /. float_of_int src in
        ( rows
          @ [
              [
                name; string_of_int src; string_of_int nodes;
                Fmt.str "%.2f" ratio;
              ];
            ],
          ratio :: ratios ))
      ([], [])
      [ "pedagogical"; "sord"; "cfd"; "srad"; "chargei"; "stassuij" ]
  in
  emit_table ~file:"bet_size.csv"
    (Table.make
       ~headers:[ "workload"; "source stmts"; "BET nodes"; "ratio" ]
       ~aligns:Table.[ Left; Right; Right; Right ]
       rows);
  let avg = List.fold_left ( +. ) 0. ratios /. float_of_int (List.length ratios) in
  Fmt.pr "@.average ratio %.2f; max %.2f (paper: 0.88 avg, <= 2)@." avg
    (List.fold_left Float.max 0. ratios)

let scaling () =
  section "scaling"
    "Analysis time is independent of input size; simulation is not  \
     [abstract, SSIV]";
  let w = Workloads.Registry.find_exn "srad" in
  let rows =
    List.map
      (fun scale ->
        let program, inputs = w.Workloads.Registry.make ~scale in
        let npix =
          match List.assoc_opt "npix" inputs with
          | Some v -> Bet.Value.to_float v
          | None -> 0.
        in
        let t0 = Unix.gettimeofday () in
        let a = P.analyze ~machine:bgq ~workload:w ~scale () in
        let t_analyze = Unix.gettimeofday () -. t0 in
        let t1 = Unix.gettimeofday () in
        let config = Sim.Interp.default_config ~machine:bgq () in
        let r = Sim.Interp.run ~config ~inputs program in
        let t_sim = Unix.gettimeofday () -. t1 in
        [
          Fmt.str "%.0f" npix;
          Fmt.str "%.1f" (a.P.a_projection.Analysis.Perf.total_time *. 1e3);
          Fmt.str "%.1f" (r.Sim.Interp.total_time *. 1e3);
          Fmt.str "%.1f" (t_analyze *. 1e3);
          Fmt.str "%.1f" (t_sim *. 1e3);
        ])
      [ 0.06; 0.12; 0.25; 0.5 ]
  in
  emit_table ~file:"scaling.csv"
    (Table.make
       ~title:"SRAD at growing image sizes (times in ms, host wall clock)"
       ~headers:
         [
           "pixels"; "projected app ms"; "simulated app ms"; "analysis wall ms";
           "simulation wall ms";
         ]
       ~aligns:Table.[ Right; Right; Right; Right; Right ]
       rows)

let summary () =
  section "summary"
    "Selection quality across all workloads and machines  [paper SSVIII: avg \
     95.8%, min >= 80%]";
  let cells = ref [] in
  let rows =
    List.map
      (fun name ->
        let q machine =
          let r = run_of name machine in
          let k = (Workloads.Registry.find_exn name).Workloads.Registry.paper_top_k in
          let q = P.model_quality r ~k in
          cells := q :: !cells;
          q
        in
        let qb = q bgq and qx = q xeon in
        [ name; pct qb; pct qx ])
      [ "sord"; "cfd"; "srad"; "chargei"; "stassuij" ]
  in
  emit_table ~file:"summary_quality.csv"
    (Table.make
       ~title:"model selection quality at the paper's per-workload top-k"
       ~headers:[ "workload"; "Q on BG/Q"; "Q on Xeon" ]
       ~aligns:Table.[ Left; Right; Right ]
       rows);
  let n = float_of_int (List.length !cells) in
  let avg = List.fold_left ( +. ) 0. !cells /. n in
  let mn = List.fold_left Float.min 1. !cells in
  Fmt.pr "@.mean quality %s, minimum %s (paper: mean 95.8%%, min >= 80%%)@."
    (pct avg) (pct mn)

(* ------------------------------------------------------------------ *)
(* Ablations: switch on the model refinements the paper leaves out and
   quantify how much of the two documented errors they repair. *)

let ablation () =
  section "ablation"
    "Roofline refinements (division latency, vectorization)  [SSVII-B/C \
     error sources]";
  let share blocks name =
    let total = BS.total_time blocks in
    match
      List.find_opt (fun (b : BS.t) -> String.equal b.BS.name name) blocks
    with
    | Some b -> b.BS.time /. total
    | None -> 0.
  in
  let project name opts machine =
    let w = Workloads.Registry.find_exn name in
    let a = P.analyze ~opts ~machine ~workload:w ~scale:0.25 () in
    a.P.a_projection.Analysis.Perf.blocks
  in
  let base = Hw.Roofline.default_opts in
  let div_on = { base with Hw.Roofline.div_aware = true } in
  let vec_on = { base with Hw.Roofline.vector_aware = true } in
  let cfd_meas = (run_of "cfd" bgq).P.measured.blocks in
  Fmt.pr
    "CFD compute_velocity share on BG/Q: measured %s | model %s | \
     div-aware model %s@."
    (pct (share cfd_meas "compute_velocity"))
    (pct (share (project "cfd" base bgq) "compute_velocity"))
    (pct (share (project "cfd" div_on bgq) "compute_velocity"));
  let st_meas = (run_of "stassuij" bgq).P.measured.blocks in
  Fmt.pr
    "STASSUIJ sparse_axpy share on BG/Q: measured %s | model %s | \
     vector-aware model %s@."
    (pct (share st_meas "sparse_axpy"))
    (pct (share (project "stassuij" base bgq) "sparse_axpy"))
    (pct (share (project "stassuij" vec_on bgq) "sparse_axpy"));
  (* Does any refinement improve overall selection quality?  The
     footprint cache model (lib/analysis Perf.Footprint) replaces the
     paper's constant hit ratios with per-loop working-set checks —
     the hardware-model refinement the paper defers to future work. *)
  List.iter
    (fun name ->
      let r = run_of name bgq in
      let q ?cache opts =
        let w = Workloads.Registry.find_exn name in
        let a =
          P.analyze ~opts ?cache ~machine:bgq ~workload:w ~scale:r.P.scale ()
        in
        Q.quality ~measured:r.P.measured.blocks
          ~candidate:a.P.a_projection.Analysis.Perf.blocks ~k:10
      in
      Fmt.pr
        "%-10s Q(10) baseline %s | div-aware %s | vec-aware %s | footprint \
         cache %s | all %s@."
        name (pct (q base)) (pct (q div_on)) (pct (q vec_on))
        (pct (q ~cache:Analysis.Perf.Footprint base))
        (pct
           (q ~cache:Analysis.Perf.Footprint
              { base with Hw.Roofline.div_aware = true; vector_aware = true })))
    [ "sord"; "cfd"; "srad"; "chargei"; "stassuij" ]

(* ------------------------------------------------------------------ *)

let machine_microbench () =
  section "machine_microbench"
    "Machine characterization via in-house microbenchmarks  [paper SSVI \
     methodology]";
  Fmt.pr
    "(the paper measured BG/Q's 51-cycle L2 and 180-cycle DRAM with \
     microbenchmarks;@.this runs the same probes against the simulator to \
     cross-check the machine models)@.@.";
  List.iter
    (fun machine ->
      Fmt.pr "%s (configured: L1 %.0f cyc, L2 %.0f cyc, mem %.0f cyc, %.1f \
              GB/s, MLP %.1f):@."
        machine.Hw.Machine.name machine.Hw.Machine.l1.Hw.Machine.latency_cycles
        machine.Hw.Machine.l2.Hw.Machine.latency_cycles
        machine.Hw.Machine.mem_latency_cycles machine.Hw.Machine.mem_bw_gbs
        machine.Hw.Machine.mlp;
      List.iter
        (fun (bench : Hw.Microbench.t) ->
          let config = Sim.Interp.default_config ~machine () in
          let r =
            Sim.Interp.run ~config ~inputs:bench.Hw.Microbench.inputs
              bench.Hw.Microbench.program
          in
          let m =
            Hw.Microbench.measure bench ~total_cycles:r.Sim.Interp.total_cycles
              ~freq_ghz:machine.Hw.Machine.freq_ghz
          in
          Fmt.pr "  %a@." Hw.Microbench.pp_measurement m)
        (Hw.Microbench.suite machine);
      Fmt.pr "@.")
    [ bgq; xeon ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the analysis engine itself: the paper's
   selling point is that analysis is cheap; these measure it. *)

let bechamel_section () =
  section "engine_microbench"
    "Analysis-engine micro-benchmarks (Bechamel): the paper's 'projection \
     within a few minutes' claim is milliseconds here";
  let open Bechamel in
  let w = Workloads.Registry.find_exn "sord" in
  let program, inputs = w.Workloads.Registry.make ~scale:1.0 in
  let source = Skeleton.Pretty.to_string program in
  let hints = Bet.Hints.empty in
  let built =
    Bet.Build.build ~hints
      ~lib_work:(Hw.Libmix.work_fn Hw.Libmix.default)
      ~inputs program
  in
  let projection = Analysis.Perf.project bgq built in
  let tests =
    [
      Test.make ~name:"parse sord skeleton" (Staged.stage (fun () ->
          ignore (Skeleton.Parser.parse ~file:"sord.skope" source)));
      Test.make ~name:"build BST" (Staged.stage (fun () ->
          ignore (Bet.Bst.build program)));
      Test.make ~name:"build BET" (Staged.stage (fun () ->
          ignore
            (Bet.Build.build ~hints
               ~lib_work:(Hw.Libmix.work_fn Hw.Libmix.default)
               ~inputs program)));
      Test.make ~name:"roofline projection (BG/Q)" (Staged.stage (fun () ->
          ignore (Analysis.Perf.project bgq built)));
      Test.make ~name:"hot spot selection" (Staged.stage (fun () ->
          ignore
            (Analysis.Hotspot.select
               ~total_instructions:
                 (Bet.Bst.total_instructions built.Bet.Build.bst)
               projection.Analysis.Perf.blocks)));
      Test.make ~name:"hot path extraction" (Staged.stage (fun () ->
          let sel =
            Analysis.Hotspot.select
              ~total_instructions:
                (Bet.Bst.total_instructions built.Bet.Build.bst)
              projection.Analysis.Perf.blocks
          in
          ignore
            (Analysis.Hotpath.extract
               ~selection:(Analysis.Hotspot.spot_set sel)
               ~node_time:projection.Analysis.Perf.node_time
               ~node_enr:projection.Analysis.Perf.node_enr
               built.Bet.Build.root)));
    ]
  in
  let benchmark test =
    let quota = Time.second 0.25 in
    Benchmark.all
      (Benchmark.cfg ~limit:1000 ~quota ())
      [ Toolkit.Instance.monotonic_clock ]
      test
  in
  let analyze raw =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Fmt.pr "  %-32s %10.1f ns/run@." name est
          | _ -> Fmt.pr "  %-32s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* The serving layer: cache-warm sweep throughput through the skoped
   dispatcher (no sockets — this measures request handling itself). *)

let service_section () =
  section "service_throughput"
    "skoped dispatcher: cold vs cache-warm sweep throughput (the 'serve \
     thousands of what-if queries' scenario)";
  let module D = Skope_service.Dispatch in
  let dispatch = D.create () in
  let sweep_body =
    {|{"kind":"sweep","workload":"sord","machine":"bgq","axis":"bw","values":[4,8,16,32,64,128,256,512]}|}
  in
  let analyze_body = {|{"kind":"analyze","workload":"sord","machine":"bgq"}|} in
  let time_one body =
    let t0 = Unix.gettimeofday () in
    ignore (D.handle dispatch body);
    Unix.gettimeofday () -. t0
  in
  let cold = time_one sweep_body in
  let reps = 200 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (D.handle dispatch sweep_body)
  done;
  let warm_total = Unix.gettimeofday () -. t0 in
  let warm = warm_total /. float_of_int reps in
  Fmt.pr
    "8-point bandwidth sweep of SORD on BG/Q:@.  cold (8 BET projections)  \
     %8.2f ms@.  cache-warm (x%d)         %8.3f ms  -> %.0f sweeps/s, %.0f \
     projections/s, %.0fx speedup@."
    (cold *. 1e3) reps (warm *. 1e3)
    (1. /. warm)
    (8. /. warm) (cold /. warm);
  let t1 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (D.handle dispatch analyze_body)
  done;
  let a_warm = (Unix.gettimeofday () -. t1) /. float_of_int reps in
  Fmt.pr "cache-warm analyze: %.3f ms -> %.0f req/s@." (a_warm *. 1e3)
    (1. /. a_warm);
  let v = Skope_service.Metrics.view dispatch.D.metrics in
  Fmt.pr "dispatcher cache hit rate over the run: %s (%d lookups)@."
    (pct v.Skope_service.Metrics.hit_rate)
    (v.Skope_service.Metrics.cache_hits + v.Skope_service.Metrics.cache_misses)

(* ------------------------------------------------------------------ *)
(* Design-space exploration: a grid shares one BET, so the marginal
   cost per point is a projection, not a pipeline run.  The acceptance
   bar for lib/explore is >= 3x over independent analyzes on a
   16-point grid. *)

let explore_section () =
  section "explore_reuse"
    "skope explore: shared-BET grid evaluation vs independent analyzes \
     (16-point bw x freq grid)";
  let module Explore = Skope_explore.Explore in
  let w = Workloads.Registry.find_exn "sord" in
  let scale = 0.25 in
  let axes =
    [
      Hw.Designspace.Mem_bandwidth [ 7.; 14.; 28.; 56. ];
      Hw.Designspace.Frequency [ 0.8; 1.2; 1.6; 3.2 ];
    ]
  in
  let pts = Explore.grid_points bgq axes in
  let n = List.length pts in
  (* Independent path: the full pipeline (make, validate, lint, hints,
     BET build, projection) once per grid point. *)
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (p : Hw.Designspace.point) ->
      ignore
        (P.analyze ~machine:p.Hw.Designspace.p_machine ~workload:w ~scale ()))
    pts;
  let indep = Unix.gettimeofday () -. t0 in
  (* Shared path: prepare once, project per point (timed including the
     one-time prepare, so the comparison is end to end). *)
  let t1 = Unix.gettimeofday () in
  let prepared = P.Prepared.create ~workload:w ~scale () in
  let r1 = Explore.evaluate ~jobs:1 prepared pts in
  let shared1 = Unix.gettimeofday () -. t1 in
  let jobs = min (Domain.recommended_domain_count ()) n in
  let t2 = Unix.gettimeofday () in
  let prepared2 = P.Prepared.create ~workload:w ~scale () in
  let rn = Explore.evaluate ~jobs prepared2 pts in
  let sharedn = Unix.gettimeofday () -. t2 in
  Fmt.pr "%d-point grid of SORD (scale %.2f) around BG/Q:@." n scale;
  Fmt.pr "  %d independent analyzes (BET per point)  %8.1f ms@." n
    (indep *. 1e3);
  Fmt.pr "  shared BET, 1 domain                     %8.1f ms  -> %.1fx@."
    (shared1 *. 1e3) (indep /. shared1);
  Fmt.pr "  shared BET, %d domains                    %8.1f ms  -> %.1fx@."
    jobs (sharedn *. 1e3) (indep /. sharedn);
  if indep /. shared1 < 3. then
    Fmt.pr "  WARNING: shared-BET speedup below the 3x acceptance bar@.";
  emit_table ~file:"explore_pareto.csv"
    (Table.make
       ~title:
         (Fmt.str
            "Pareto frontier over (projected time, hardware cost proxy): %d \
             of %d points"
            (List.length r1.Explore.pareto) n)
       ~headers:[ "point"; "projected ms"; "cost proxy" ]
       ~aligns:Table.[ Left; Right; Right ]
       (List.map
          (fun (p : Explore.point) ->
            [
              p.Explore.tag;
              Fmt.str "%.2f" (p.Explore.time *. 1e3);
              Fmt.str "%.1f" (p.Explore.cost);
            ])
          r1.Explore.pareto));
  (* Parallel evaluation must price the grid identically. *)
  let same =
    List.for_all2
      (fun (a : Explore.point) (b : Explore.point) ->
        Float.equal a.Explore.time b.Explore.time)
      r1.Explore.points rn.Explore.points
  in
  Fmt.pr "@.parallel evaluation matches sequential: %s@."
    (if same then "yes" else "NO")

(* ------------------------------------------------------------------ *)
(* Arena engine: per-point re-pricing cost on a 1024-point grid.  The
   acceptance bar for the arena is >= 5x under the PR 4 shared-BET
   tree walk per point, with bit-identical results (the differential
   suite gates the identity; this section reports the cost). *)

let arena_section ?(record = fun _ _ -> ()) ?(scale = 0.25) () =
  section "arena_projection"
    "arena BET engine: per-point re-pricing on a 1024-point grid (tree \
     walk vs arena full pass vs arena delta chain)";
  let module Explore = Skope_explore.Explore in
  let module AP = Analysis.Arena_price in
  let w = Workloads.Registry.find_exn "sord" in
  (* Five 4-level axes = 4^5 = 1024 points.  The last axis varies
     fastest in grid order, so most consecutive points are single-axis
     moves — the case the delta chain exists for. *)
  let axes =
    [
      Hw.Designspace.Frequency [ 0.8; 1.2; 1.6; 3.2 ];
      Hw.Designspace.Issue_width [ 1.; 2.; 4.; 8. ];
      Hw.Designspace.Mem_bandwidth [ 7.; 14.; 28.; 56. ];
      Hw.Designspace.Mem_latency [ 40.; 80.; 160.; 320. ];
      Hw.Designspace.Vector_width [ 1; 2; 4; 8 ];
    ]
  in
  let pts = Explore.grid_points bgq axes in
  let n = List.length pts in
  let machines =
    Array.of_list
      (List.map (fun (p : Hw.Designspace.point) -> p.Hw.Designspace.p_machine) pts)
  in
  (* The one-time prepare/flatten is excluded: the bar is the marginal
     pricing cost per grid point.  Hot-spot selection is excluded from
     all three rows alike — it is the same downstream stage whichever
     engine priced the point. *)
  let tree_prep = P.Prepared.create ~workload:w ~scale () in
  let arena_prep = P.Prepared.create ~engine:P.Arena ~workload:w ~scale () in
  let built = P.Prepared.built tree_prep in
  let arena = Bet.Arena.of_build built in
  let best f =
    ignore (f ());
    let b = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !b then b := dt
    done;
    !b
  in
  (* PR 4 baseline: the recursive tree walk, once per point. *)
  let tree_s =
    best (fun () ->
        Array.iter (fun m -> ignore (Analysis.Perf.project m built)) machines)
  in
  (* Full arena pass per point: flat loops, no delta reuse. *)
  let full_s =
    best (fun () -> Array.iter (fun m -> ignore (AP.price arena m)) machines)
  in
  (* Delta chain: consecutive grid points re-price dependent nodes
     only. *)
  let delta_s =
    best (fun () ->
        let prev = ref None in
        Array.iter
          (fun m ->
            let pr =
              match !prev with
              | None -> AP.price arena m
              | Some pr -> AP.price_delta ~prev:pr arena m
            in
            prev := Some pr)
          machines)
  in
  let us x = x /. float_of_int n *. 1e6 in
  Fmt.pr "%d-point grid of SORD (scale %.2f) around BG/Q, per point:@." n scale;
  Fmt.pr "  tree walk (PR 4 shared BET)          %8.2f us@." (us tree_s);
  Fmt.pr "  arena, full pass                     %8.2f us  -> %.1fx@."
    (us full_s) (tree_s /. full_s);
  Fmt.pr "  arena, delta chain                   %8.2f us  -> %.1fx@."
    (us delta_s) (tree_s /. delta_s);
  if tree_s /. delta_s < 5. then
    Fmt.pr "  WARNING: arena delta speedup below the 5x acceptance bar@.";
  (* Bit-for-bit identity through the full projection API (selection
     included), on every grid point. *)
  let rt = Explore.evaluate ~jobs:1 tree_prep pts in
  let ra = Explore.evaluate ~jobs:1 arena_prep pts in
  let same =
    List.for_all2
      (fun (a : Explore.point) (b : Explore.point) ->
        Float.equal a.Explore.time b.Explore.time
        && a.Explore.outcome.P.Prepared.o_blocks
           = b.Explore.outcome.P.Prepared.o_blocks)
      rt.Explore.points ra.Explore.points
  in
  Fmt.pr "@.arena matches tree on all %d points: %s@." n
    (if same then "yes" else "NO");
  record "arena_tree_us_per_point" (us tree_s);
  record "arena_full_us_per_point" (us full_s);
  record "arena_delta_us_per_point" (us delta_s);
  record "arena_delta_speedup_x" (tree_s /. delta_s);
  emit_table ~file:"arena_projection.csv"
    (Table.make
       ~title:(Fmt.str "arena engine, %d-point grid, per-point cost" n)
       ~headers:[ "engine"; "us/point"; "speedup" ]
       ~aligns:Table.[ Left; Right; Right ]
       [
         [ "tree"; Fmt.str "%.2f" (us tree_s); "1.0" ];
         [ "arena"; Fmt.str "%.2f" (us full_s); Fmt.str "%.1f" (tree_s /. full_s) ];
         [ "arena+delta"; Fmt.str "%.2f" (us delta_s);
           Fmt.str "%.1f" (tree_s /. delta_s) ];
       ]);
  (us tree_s, us full_s, us delta_s, tree_s /. delta_s, same, n)

(* ------------------------------------------------------------------ *)
(* Cluster routing: cache-affinity scaling across shard counts.  The
   resource sharding multiplies is cache capacity: the working set (24
   distinct analyze fingerprints, cycled round-robin) overflows one
   shard's 12-entry LRU — cyclic access against a smaller LRU evicts
   every entry before its reuse, so every request pays a full BET
   projection — while 4 shards hold ~6 fingerprints each and serve
   every repeat from cache.  Requests go through a real router over
   TCP, so the numbers include routing and transport. *)

let cluster_working_set = 24
let cluster_cache_capacity = 12
let cluster_rounds = 4

let cluster_measure shards =
  let module Local = Skope_cluster.Local in
  let module C = Skope_service.Client in
  let module A = Skope_service.Service_api in
  let module J = Report.Json in
  let bodies =
    Array.init cluster_working_set (fun i ->
        A.to_body
          (A.analyze
             ~opts:
               {
                 A.default_query_opts with
                 A.scale = Some (0.2 +. (0.002 *. float_of_int i));
               }
             ~workload:"sord" ~machine:"bgq" ()))
  in
  let c =
    Local.start ~shards ~cache_capacity:cluster_cache_capacity ~shard_pool:2
      ~probe_interval_s:1.0 ()
  in
  Fun.protect
    ~finally:(fun () -> Local.stop c)
    (fun () ->
      let port = Local.router_port c in
      let issue body =
        match C.request ~host:"127.0.0.1" ~port body with
        | Ok _ -> ()
        | Error e -> failwith ("cluster bench: " ^ C.error_message e)
      in
      (* Warm round: populate whatever fits each shard's LRU. *)
      Array.iter issue bodies;
      let t0 = Unix.gettimeofday () in
      for _ = 1 to cluster_rounds do
        Array.iter issue bodies
      done;
      let dt = Unix.gettimeofday () -. t0 in
      let rps =
        float_of_int (cluster_rounds * cluster_working_set) /. dt
      in
      (* Cluster-wide cache counters out of cluster_stats: with
         disjoint per-shard caches every fingerprint is built (missed)
         on exactly one shard. *)
      let hits, misses =
        match C.request ~host:"127.0.0.1" ~port (A.to_body A.Cluster_stats) with
        | Error e -> failwith ("cluster bench: " ^ C.error_message e)
        | Ok resp -> (
          match J.of_string resp with
          | Error e -> failwith ("cluster bench: " ^ e)
          | Ok j -> (
            match
              Option.bind (J.member "result" j) (J.member "members")
            with
            | Some (J.List members) ->
              List.fold_left
                (fun (h, m) mem ->
                  let metric key =
                    match
                      Option.bind
                        (Option.bind (J.member "stats" mem)
                           (J.member "metrics"))
                        (J.member key)
                    with
                    | Some (J.Int n) -> n
                    | _ -> 0
                  in
                  (h + metric "cache_hits", m + metric "cache_misses"))
                (0, 0) members
            | _ -> failwith "cluster bench: cluster_stats has no members"))
      in
      (rps, hits, misses))

let cluster_section ?(record = fun _ _ -> ()) () =
  section "cluster_scaling"
    (Fmt.str
       "cluster router: cached throughput vs shard count (working set %d \
        fingerprints, per-shard LRU capacity %d)"
       cluster_working_set cluster_cache_capacity)
  ;
  let results =
    List.map (fun shards -> (shards, cluster_measure shards)) [ 1; 2; 4 ]
  in
  let rps1, _, _ = List.assoc 1 results in
  emit_table ~file:"cluster_scaling.csv"
    (Table.make
       ~title:
         (Fmt.str "%d requests per run through the router, after one warm \
                   round" (cluster_rounds * cluster_working_set))
       ~headers:[ "shards"; "req/s"; "hits"; "misses"; "vs 1 shard" ]
       ~aligns:Table.[ Right; Right; Right; Right; Right ]
       (List.map
          (fun (shards, (rps, hits, misses)) ->
            [
              string_of_int shards;
              Fmt.str "%.0f" rps;
              string_of_int hits;
              string_of_int misses;
              Fmt.str "%.1fx" (rps /. rps1);
            ])
          results));
  List.iter
    (fun (shards, (rps, _, _)) ->
      record (Fmt.str "cluster_cached_rps_%d" shards) rps)
    results;
  let rps4, _, misses4 = List.assoc 4 results in
  record "cluster_scaling_4x_over_1x" (rps4 /. rps1);
  Fmt.pr "@.4-shard vs 1-shard cached throughput: %.1fx (acceptance: >= 3x)@."
    (rps4 /. rps1);
  if rps4 /. rps1 < 3. then
    Fmt.pr "  WARNING: cluster scaling below the 3x acceptance bar@.";
  Fmt.pr
    "4-shard cluster-wide misses: %d for a %d-fingerprint working set — each \
     fingerprint was built on exactly one shard (disjoint caches)@."
    misses4 cluster_working_set;
  results

(* ------------------------------------------------------------------ *)
(* Lint throughput: the interval-domain pass runs before every
   projection, so it must be cheap relative to a BET evaluation. *)

let lint_section () =
  section "lint_throughput"
    "skope lint: interval-domain abstract interpretation throughput";
  let reps = 100 in
  List.iter
    (fun (w : Workloads.Registry.t) ->
      let program, inputs = w.make ~scale:w.default_scale in
      let n_diags = List.length (Lint.Engine.run ~inputs program) in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        ignore (Lint.Engine.run ~inputs program)
      done;
      let per = (Unix.gettimeofday () -. t0) /. float_of_int reps in
      Fmt.pr "  %-12s %8.3f ms/run  %6.0f runs/s  (%d diagnostics)@." w.name
        (per *. 1e3)
        (1. /. per)
        n_diags)
    Workloads.Registry.all

(* ------------------------------------------------------------------ *)
(* Audit throughput: symbolic derivation plus all eight A rules (the
   scale-sweep probes re-derive the tree several times), so it is the
   most expensive static pass; it runs once per `skope audit` target
   and has to stay within interactive latency. *)

let audit_section () =
  section "audit_throughput"
    "skope audit: symbolic derivation + scaling/deadlock rules";
  let reps = 20 in
  List.iter
    (fun (w : Workloads.Registry.t) ->
      let scale = w.default_scale in
      let run () = Pipeline.audit ~workload:w ~scale () in
      let n_diags = List.length (run ()).Lint.Audit.diags in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        ignore (run ())
      done;
      let per = (Unix.gettimeofday () -. t0) /. float_of_int reps in
      Fmt.pr "  %-12s %8.3f ms/run  %6.0f runs/s  (%d diagnostics)@." w.name
        (per *. 1e3)
        (1. /. per)
        n_diags)
    Workloads.Registry.all

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: the tracer must be free when disabled and
   cheap when collecting — instrumented phases run once per request,
   so even the enabled cost only has to beat a projection (~ms). *)

let telemetry_section () =
  section "telemetry_overhead"
    "span tracing: disabled fast path vs Chrome-sink collection";
  let module Span = Telemetry.Span in
  let module Chrome = Telemetry.Chrome in
  let reps = 1_000_000 in
  let bench f =
    let t0 = Unix.gettimeofday () in
    let acc = ref 0 in
    for i = 1 to reps do
      acc := f i
    done;
    ignore !acc;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let baseline = bench (fun i -> i + 1) in
  Span.clear_sinks ();
  let disabled = bench (fun i -> Span.with_ ~name:"noop" (fun () -> i + 1)) in
  let collector = Chrome.create () in
  let sink = Chrome.sink collector in
  Span.add_sink sink;
  let enabled_reps = 100_000 in
  let t0 = Unix.gettimeofday () in
  let acc = ref 0 in
  for i = 1 to enabled_reps do
    acc := Span.with_ ~name:"collected" (fun () -> i + 1)
  done;
  ignore !acc;
  let enabled = (Unix.gettimeofday () -. t0) /. float_of_int enabled_reps in
  Span.remove_sink sink;
  Fmt.pr "  bare closure call        %8.1f ns@." (baseline *. 1e9);
  Fmt.pr "  span, no sink            %8.1f ns  (overhead %.1f ns)@."
    (disabled *. 1e9)
    ((disabled -. baseline) *. 1e9);
  Fmt.pr "  span, chrome sink        %8.1f ns  (%d spans collected)@."
    (enabled *. 1e9) (Chrome.length collector);
  let w = Workloads.Registry.find_exn "pedagogical" in
  let run () =
    ignore (P.analyze ~machine:bgq ~workload:w ~scale:w.default_scale ())
  in
  let pipeline_reps = 50 in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to pipeline_reps do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int pipeline_reps
  in
  let untraced = time run in
  let c2 = Chrome.create () in
  let sink2 = Chrome.sink c2 in
  Span.add_sink sink2;
  let traced = time run in
  Span.remove_sink sink2;
  Fmt.pr "  pipeline untraced        %8.3f ms/run@." (untraced *. 1e3);
  Fmt.pr "  pipeline traced          %8.3f ms/run  (+%.1f%%, %d spans)@."
    (traced *. 1e3)
    (100. *. ((traced /. Float.max 1e-12 untraced) -. 1.))
    (Chrome.length c2)

(* ------------------------------------------------------------------ *)
(* Flight recorder overhead: the recorder rides the span-sink bus and
   is always on in the server, so its marginal cost on the hot path —
   a cache-warm analyze request — is the number that matters.  We
   compare the same dispatcher loop with the sink bus silenced
   (begin/commit bookkeeping still runs) against a fresh dispatcher
   whose recorder sink is the only subscriber. *)

let recorder_section ?(record = fun _ _ -> ()) () =
  section "recorder_overhead"
    "flight recorder: marginal cost on the cached-hit dispatch path";
  let module Span = Telemetry.Span in
  let module D = Skope_service.Dispatch in
  (* A fixed trace id keeps the cache-hit responses byte-identical so
     both loops serialize exactly the same bytes. *)
  let body =
    {|{"kind":"analyze","workload":"sord","machine":"bgq","trace":{"id":"bench-rec"}}|}
  in
  let reps = 2_000 in
  let time d =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (D.handle d body)
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  Span.clear_sinks ();
  let d_off = D.create () in
  (* Drop the recorder sink that [create] just installed: the baseline
     keeps the per-request begin/commit bookkeeping but no span
     grouping and no ring writes. *)
  Span.clear_sinks ();
  ignore (D.handle d_off body);
  let off = time d_off in
  Span.clear_sinks ();
  let d_on = D.create () in
  ignore (D.handle d_on body);
  let on = time d_on in
  let pct = 100. *. ((on /. Float.max 1e-12 off) -. 1.) in
  Fmt.pr "  cached hit, recorder off %8.1f us/req@." (off *. 1e6);
  Fmt.pr "  cached hit, recorder on  %8.1f us/req  (+%.1f%%)@." (on *. 1e6) pct;
  record "recorder_off_us" (off *. 1e6);
  record "recorder_on_us" (on *. 1e6);
  record "recorder_hit_overhead_pct" pct;
  (off *. 1e6, on *. 1e6, pct)

(* ------------------------------------------------------------------ *)
(* Quick mode: a seconds-long subset for CI — dispatcher throughput,
   lint throughput, telemetry overhead and a small shared-BET explore
   grid; no paper-scale simulations.  `--json FILE` writes the
   headline numbers as a machine-readable artifact so runs can be
   compared across commits. *)

let quick_run json_file =
  let module J = Report.Json in
  let module D = Skope_service.Dispatch in
  let metrics = ref [] in
  let record key v = metrics := (key, v) :: !metrics in
  let t_start = Unix.gettimeofday () in
  section "quick" "CI quick benchmark (seconds-long subset)";
  (* dispatcher: cache-warm request throughput *)
  let dispatch = D.create () in
  let analyze_body = {|{"kind":"analyze","workload":"sord","machine":"bgq"}|} in
  let sweep_body =
    {|{"kind":"sweep","workload":"sord","machine":"bgq","axis":"bw","values":[7,14,28,56]}|}
  in
  ignore (D.handle dispatch analyze_body);
  ignore (D.handle dispatch sweep_body);
  let time_reps reps f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let a_warm = time_reps 200 (fun () -> ignore (D.handle dispatch analyze_body)) in
  let s_warm = time_reps 100 (fun () -> ignore (D.handle dispatch sweep_body)) in
  Fmt.pr "  dispatcher, cache-warm analyze   %8.0f req/s@." (1. /. a_warm);
  Fmt.pr "  dispatcher, cache-warm sweep     %8.0f req/s@." (1. /. s_warm);
  record "dispatch_analyze_warm_req_per_s" (1. /. a_warm);
  record "dispatch_sweep_warm_req_per_s" (1. /. s_warm);
  (* lint: one representative workload *)
  let w = Workloads.Registry.find_exn "sord" in
  let program, inputs = w.make ~scale:w.default_scale in
  let lint_per = time_reps 50 (fun () -> ignore (Lint.Engine.run ~inputs program)) in
  Fmt.pr "  lint sord                        %8.0f runs/s@." (1. /. lint_per);
  record "lint_sord_runs_per_s" (1. /. lint_per);
  (* telemetry: the disabled fast path *)
  Telemetry.Span.clear_sinks ();
  let span_per =
    time_reps 200_000 (fun () ->
        ignore (Telemetry.Span.with_ ~name:"noop" (fun () -> 0)))
  in
  Fmt.pr "  span, no sink                    %8.1f ns@." (span_per *. 1e9);
  record "span_disabled_ns" (span_per *. 1e9);
  (* explore: shared-BET reuse on a small grid *)
  let module Explore = Skope_explore.Explore in
  let scale = 0.1 in
  let axes =
    [ Hw.Designspace.Mem_bandwidth [ 7.; 28. ];
      Hw.Designspace.Frequency [ 0.8; 1.6 ] ]
  in
  let pts = Explore.grid_points bgq axes in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (p : Hw.Designspace.point) ->
      ignore (P.analyze ~machine:p.Hw.Designspace.p_machine ~workload:w ~scale ()))
    pts;
  let indep = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let prepared = P.Prepared.create ~workload:w ~scale () in
  ignore (Explore.evaluate ~jobs:1 prepared pts);
  let shared = Unix.gettimeofday () -. t1 in
  Fmt.pr "  explore shared-BET speedup       %8.1fx (%d-point grid)@."
    (indep /. shared) (List.length pts);
  record "explore_shared_speedup_x" (indep /. shared);
  (* arena engine: per-point cost on the 1024-point grid *)
  let arena_tree_us, arena_full_us, arena_delta_us, arena_speedup,
      arena_identical, arena_points =
    arena_section ~record ~scale:0.1 ()
  in
  (* flight recorder: marginal cost on the cached-hit path *)
  let rec_off_us, rec_on_us, rec_pct = recorder_section ~record () in
  (* cluster: cache-affinity scaling over 1/2/4 shards *)
  let cluster_results = cluster_section ~record () in
  let elapsed = Unix.gettimeofday () -. t_start in
  record "elapsed_s" elapsed;
  Fmt.pr "@.quick bench done in %.1fs@." elapsed;
  match json_file with
  | None -> ()
  | Some file ->
    let json =
      J.Obj
        [
          ("schema", J.String "skope-bench-quick/1");
          ("version", J.String Version.version);
          ("git", J.String Version.git);
          ( "metrics",
            J.Obj (List.rev_map (fun (k, v) -> (k, J.Float v)) !metrics) );
        ]
    in
    let oc = open_out file in
    output_string oc (J.to_string json);
    output_string oc "\n";
    close_out oc;
    Fmt.pr "wrote %s@." file;
    (* The cluster numbers also ship as their own artifact, keyed by
       shard count, so scaling regressions diff cleanly across runs. *)
    let cluster_file = "BENCH_cluster.json" in
    let cluster_json =
      J.Obj
        [
          ("schema", J.String "skope-bench-cluster/1");
          ("version", J.String Version.version);
          ("git", J.String Version.git);
          ("working_set", J.Int cluster_working_set);
          ("cache_capacity", J.Int cluster_cache_capacity);
          ( "shards",
            J.List
              (List.map
                 (fun (shards, (rps, hits, misses)) ->
                   J.Obj
                     [
                       ("shards", J.Int shards);
                       ("cached_rps", J.Float rps);
                       ("cache_hits", J.Int hits);
                       ("cache_misses", J.Int misses);
                     ])
                 cluster_results) );
          ( "scaling_4x_over_1x",
            J.Float
              (let rps1, _, _ = List.assoc 1 cluster_results in
               let rps4, _, _ = List.assoc 4 cluster_results in
               rps4 /. rps1) );
        ]
    in
    let oc = open_out cluster_file in
    output_string oc (J.to_string cluster_json);
    output_string oc "\n";
    close_out oc;
    Fmt.pr "wrote %s@." cluster_file;
    (* Tracing cost ships as its own artifact too: the flight recorder
       is always on in production, so its hot-path overhead is a
       budget (<= 5%) that diffs should be able to flag. *)
    let trace_file = "BENCH_trace.json" in
    let trace_json =
      J.Obj
        [
          ("schema", J.String "skope-bench-trace/1");
          ("version", J.String Version.version);
          ("git", J.String Version.git);
          ("recorder_off_us", J.Float rec_off_us);
          ("recorder_on_us", J.Float rec_on_us);
          ("recorder_hit_overhead_pct", J.Float rec_pct);
          ("budget_pct", J.Float 5.);
        ]
    in
    let oc = open_out trace_file in
    output_string oc (J.to_string trace_json);
    output_string oc "\n";
    close_out oc;
    Fmt.pr "wrote %s@." trace_file;
    (* Arena-engine numbers ship as their own artifact: the >= 5x
       per-point bar (and the tree/arena identity) should diff
       cleanly across runs. *)
    let arena_file = "BENCH_arena.json" in
    let arena_json =
      J.Obj
        [
          ("schema", J.String "skope-bench-arena/1");
          ("version", J.String Version.version);
          ("git", J.String Version.git);
          ("grid_points", J.Int arena_points);
          ("tree_us_per_point", J.Float arena_tree_us);
          ("arena_us_per_point", J.Float arena_full_us);
          ("arena_delta_us_per_point", J.Float arena_delta_us);
          ("arena_delta_speedup_x", J.Float arena_speedup);
          ("bar_x", J.Float 5.);
          ("identical_to_tree", J.Bool arena_identical);
        ]
    in
    let oc = open_out arena_file in
    output_string oc (J.to_string arena_json);
    output_string oc "\n";
    close_out oc;
    Fmt.pr "wrote %s@." arena_file

let () =
  let quick = ref false in
  let json_file : string option ref = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--csv" :: dir :: rest ->
      csv_dir := Some dir;
      parse_args rest
    | "--quick" :: rest ->
      quick := true;
      parse_args rest
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse_args rest
    | arg :: _ ->
      Fmt.epr "bench: unknown argument %S (expected --quick, --csv DIR, --json FILE)@." arg;
      exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !quick then quick_run !json_file
  else begin
  let t0 = Unix.gettimeofday () in
  Fmt.pr
    "Reproduction harness: 'Analytically Modeling Application Execution for \
     Software-Hardware Co-Design' (IPDPSW 2014)@.";
  fig2_fig3 ();
  table1 ();
  table2 ();
  fig4 ();
  fig5 ();
  fig6 ();
  fig7 ();
  fig8 ();
  fig9 ();
  fig10 ();
  fig11 ();
  fig12 ();
  fig13 ();
  portability ();
  bet_size ();
  scaling ();
  summary ();
  ablation ();
  machine_microbench ();
  bechamel_section ();
  service_section ();
  explore_section ();
  ignore (arena_section ());
  ignore (cluster_section ());
  lint_section ();
  audit_section ();
  telemetry_section ();
  ignore (recorder_section ());
  Fmt.pr "@.[bench] total wall time %.1fs@." (Unix.gettimeofday () -. t0)
  end
