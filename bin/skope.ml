(** skope — command line interface to the co-design analysis
    framework.

    Subcommands:
    - [workloads], [machines]: list what is bundled;
    - [show]: print a workload's skeleton in the DSL syntax;
    - [parse]: parse and validate a [.skope] file;
    - [lint]: interval-domain static analysis (rules L001..L010);
    - [analyze]: analytic projection of hot spots for a machine
      (no execution on the target — the paper's use case); works on
      bundled workloads or on a [.skope] file with [--input] bindings;
    - [validate]: run the ground-truth simulator too and compare;
    - [hints]: show the branch/trip statistics one profiling run yields;
    - [miniapp]: generate a mini-application from the hot path;
    - [sweep]: explore one hardware design axis;
    - [explore]: multi-axis design-space grid against one shared BET;
    - [nodes]: multi-node strong-scaling projection;
    - [serve]: run `skoped`, the concurrent projection service;
    - [query]: query a running `skoped` (and generate load);
    - [top]: live dashboard over a running `skoped` or cluster router. *)

open Cmdliner
open Args
module P = Core.Pipeline
module Hotspot = Core.Analysis.Hotspot
module Blockstat = Core.Analysis.Blockstat
module Quality = Core.Analysis.Quality
module Table = Core.Report.Table
module Span = Core.Telemetry.Span

let file_arg =
  let doc = "Analyze this .skope file instead of a bundled workload." in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let inputs_arg =
  let doc = "Input binding NAME=INT for --file skeletons (repeatable)." in
  Arg.(value & opt_all string [] & info [ "i"; "input" ] ~docv:"NAME=INT" ~doc)

let read_source file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

module Diag = Core.Lint.Diagnostic

(* Parse + validate [file], rendering any issue as a diagnostic.
   Returns the source text alongside so callers can render excerpts. *)
let parse_with_diagnostics ?(inputs = []) file =
  let source = try read_source file with Sys_error _ -> "" in
  match
    Span.with_ ~name:"parse" ~attrs:[ ("file", file) ] (fun () ->
        Core.Skeleton.Parser.parse_file file)
  with
  | program ->
    let issues = Core.Skeleton.Validate.check ~inputs program in
    (Some program, source, List.map Diag.of_validate issues)
  | exception Core.Skeleton.Parser.Error (loc, m) ->
    (None, source, [ Diag.of_parse_error loc m ])
  | exception Core.Skeleton.Lexer.Error (loc, m) ->
    (None, source, [ Diag.of_lex_error loc m ])

(* Load a skeleton for projection: any validation or lint *error*
   aborts (warnings and infos are `skope lint`'s business). *)
let load_file file inputs =
  let source = try read_source file with Sys_error _ -> "" in
  match
    Span.with_ ~name:"parse" ~attrs:[ ("file", file) ] (fun () ->
        Core.Skeleton.Parser.parse_file file)
  with
  | program ->
    let inputs = parse_inputs inputs in
    (match
       Span.with_ ~name:"validate" (fun () ->
           Core.Skeleton.Validate.check ~inputs:(List.map fst inputs) program)
     with
    | [] -> (
      match Core.Lint.Engine.check_exn ~inputs program with
      | () -> (program, inputs)
      | exception Core.Lint.Engine.Rejected errors ->
        Fmt.epr "%a" (Diag.render_all ~source ()) errors;
        exit 1)
    | issues ->
      Fmt.epr "%a"
        (Diag.render_all ~source ())
        (List.map Diag.of_validate issues);
      exit 1)
  | exception Core.Skeleton.Parser.Error (loc, m) ->
    Fmt.epr "%a" (Diag.render ~source ()) (Diag.of_parse_error loc m);
    exit 1
  | exception Core.Skeleton.Lexer.Error (loc, m) ->
    Fmt.epr "%a" (Diag.render ~source ()) (Diag.of_lex_error loc m);
    exit 1

let pct x = Fmt.str "%.1f%%" (100. *. x)

let spot_rows total (blocks : Blockstat.t list) k =
  List.filteri (fun i _ -> i < k) blocks
  |> List.mapi (fun i (b : Blockstat.t) ->
         [
           string_of_int (i + 1);
           b.name;
           Fmt.str "%.4g" (b.time *. 1e3);
           (if total > 0. then pct (b.time /. total) else "-");
           Fmt.str "%.3g" b.enr;
           Fmt.str "%a" Core.Hw.Roofline.pp_bound b.bound;
         ])

let spots_table title total blocks k =
  Table.make ~title
    ~headers:[ "#"; "block"; "ms"; "share"; "execs"; "bound" ]
    ~aligns:Table.[ Right; Left; Right; Right; Right; Left ]
    (spot_rows total blocks k)

(* --- commands ------------------------------------------------------ *)

let cmd_workloads =
  let run () =
    List.iter
      (fun (w : Core.Workloads.Registry.t) ->
        Fmt.pr "%-12s %s@." w.name w.description)
      Core.Workloads.Registry.all
  in
  Cmd.v (Cmd.info "workloads" ~doc:"List bundled workload models")
    Term.(const run $ const ())

let cmd_machines =
  let run () =
    List.iter
      (fun m -> Fmt.pr "%a@.@." Core.Hw.Machine.pp m)
      Core.Hw.Machines.all
  in
  Cmd.v (Cmd.info "machines" ~doc:"List machine models")
    Term.(const run $ const ())

let cmd_show =
  let run workload scale =
    let w = lookup_workload workload in
    let scale = Option.value ~default:w.default_scale scale in
    let program, inputs = w.make ~scale in
    Fmt.pr "# inputs: %s@."
      (String.concat ", "
         (List.map
            (fun (k, v) -> Fmt.str "%s=%a" k Core.Bet.Value.pp v)
            inputs));
    Fmt.pr "%s@." (Core.Skeleton.Pretty.to_string program)
  in
  Cmd.v (Cmd.info "show" ~doc:"Print a workload's skeleton (DSL syntax)")
    Term.(const run $ workload_arg $ scale_arg)

let cmd_parse =
  let module J = Core.Report.Json in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file inputs format =
    let inputs = parse_inputs inputs in
    let program, source, diags =
      parse_with_diagnostics ~inputs:(List.map fst inputs) file
    in
    (match format with
    | `Json ->
      let stats =
        match program with
        | Some p ->
          [
            ("statements", J.Int (Core.Skeleton.Ast.program_size p));
            ("functions", J.Int (List.length p.Core.Skeleton.Ast.funcs));
            ( "static_instructions",
              J.Int (Core.Skeleton.Ast.instruction_count p) );
          ]
        | None -> []
      in
      print_endline
        (J.to_string
           (J.Obj
              ([
                 ("file", J.String file);
                 ("ok", J.Bool (diags = []));
                 ("diagnostics", Diag.list_to_json diags);
               ]
              @ stats)))
    | `Text -> (
      if diags <> [] then Fmt.epr "%a" (Diag.render_all ~source ()) diags;
      match program with
      | Some p when diags = [] ->
        Fmt.pr "%s: OK (%d statements, %d functions, %d static instructions)@."
          file
          (Core.Skeleton.Ast.program_size p)
          (List.length p.Core.Skeleton.Ast.funcs)
          (Core.Skeleton.Ast.instruction_count p)
      | _ -> ()));
    if diags <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "parse"
       ~doc:
         "Parse and validate a .skope file; issues carry stable codes \
          (P001/P002 syntax, V001..V011 semantics)")
    Term.(const run $ file $ inputs_arg $ format_arg)

let cmd_lint =
  let module J = Core.Report.Json in
  let files_arg =
    let doc = "Skeleton files to lint." in
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let lint_workloads_arg =
    let doc = "Lint this bundled workload (repeatable)." in
    Arg.(value & opt_all string [] & info [ "w"; "workload" ] ~docv:"NAME" ~doc)
  in
  let all_workloads_arg =
    let doc = "Lint every bundled workload." in
    Arg.(value & flag & info [ "workloads" ] ~doc)
  in
  let run files workloads all_workloads scale inputs format deny disable only
      rules trace =
    with_trace trace ~root:"lint" @@ fun () ->
    if rules then begin
      print_rules Core.Lint.Engine.rules;
      exit 0
    end;
    let deny_warnings = deny_warnings_of deny in
    let disabled =
      resolve_disabled ~rules:Core.Lint.Engine.rules ~disable ~only
    in
    let config = { Core.Lint.Engine.disabled; hints = [] } in
    let workloads =
      if all_workloads then
        List.map
          (fun (w : Core.Workloads.Registry.t) -> w.name)
          Core.Workloads.Registry.all
      else workloads
    in
    if files = [] && workloads = [] then begin
      Fmt.epr "nothing to lint: give FILEs, --workload or --workloads@.";
      exit 2
    end;
    let cli_inputs = parse_inputs inputs in
    let file_targets =
      List.map
        (fun file ->
          let program, source, diags =
            parse_with_diagnostics ~inputs:(List.map fst cli_inputs) file
          in
          let diags =
            match program with
            | Some p ->
              diags @ Core.Lint.Engine.run ~config ~inputs:cli_inputs p
            | None -> diags
          in
          (file, Some source, Diag.normalize diags))
        files
    in
    let workload_targets =
      List.map
        (fun name ->
          let w = lookup_workload name in
          let scale = Option.value ~default:w.default_scale scale in
          let program, winputs = w.make ~scale in
          let diags =
            List.map Diag.of_validate
              (Core.Skeleton.Validate.check
                 ~inputs:(List.map fst winputs) program)
            @ Core.Lint.Engine.run ~config ~inputs:winputs program
          in
          (name, None, Diag.normalize diags))
        workloads
    in
    let targets = file_targets @ workload_targets in
    let all_diags = List.concat_map (fun (_, _, ds) -> ds) targets in
    (match format with
    | `Json ->
      let jtargets =
        List.map
          (fun (target, _, ds) ->
            let errors, warnings, infos = Diag.counts ds in
            J.Obj
              [
                ("target", J.String target);
                ("diagnostics", Diag.list_to_json ds);
                ("errors", J.Int errors);
                ("warnings", J.Int warnings);
                ("infos", J.Int infos);
              ])
          targets
      in
      print_endline
        (J.to_string
           (J.Obj
              [
                ("ok", J.Bool (not (Diag.fails ~deny_warnings all_diags)));
                ("targets", J.List jtargets);
              ]))
    | `Text ->
      List.iter
        (fun (target, source, ds) ->
          List.iter (fun d -> Fmt.pr "%a@." (Diag.render ?source ()) d) ds;
          Fmt.pr "%s: %s@." target
            (if ds = [] then "clean" else Diag.summary ds))
        targets);
    if Diag.fails ~deny_warnings all_diags then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Lint skeletons with the interval-domain static analyzer (rules \
          L001..L010; see --rules)")
    Term.(
      const run $ files_arg $ lint_workloads_arg $ all_workloads_arg
      $ scale_arg $ inputs_arg $ format_arg $ deny_arg $ disable_arg
      $ only_arg $ rules_flag $ trace_arg)

let cmd_audit =
  let module J = Core.Report.Json in
  let module Audit = Core.Lint.Audit in
  let files_arg =
    let doc = "Skeleton files to audit." in
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let audit_workloads_arg =
    let doc = "Audit this bundled workload (repeatable)." in
    Arg.(value & opt_all string [] & info [ "w"; "workload" ] ~docv:"NAME" ~doc)
  in
  let all_workloads_arg =
    let doc = "Audit every bundled workload." in
    Arg.(value & flag & info [ "workloads" ] ~doc)
  in
  let ranks_arg =
    let doc =
      "Rank-space size for the load-imbalance and deadlock checks when the \
       program has no process-count input."
    in
    Arg.(value & opt int 4 & info [ "ranks" ] ~docv:"N" ~doc)
  in
  let run files workloads all_workloads scale inputs format deny disable only
      rules machine ranks trace =
    with_trace trace ~root:"audit" @@ fun () ->
    if rules then begin
      print_rules Audit.rules;
      exit 0
    end;
    let deny_warnings = deny_warnings_of deny in
    let disabled = resolve_disabled ~rules:Audit.rules ~disable ~only in
    if ranks < 1 || ranks > 1024 then begin
      Fmt.epr "--ranks must be in [1, 1024]@.";
      exit 2
    end;
    let config =
      { Audit.default_config with disabled; machine = lookup_machine machine;
        ranks }
    in
    let workloads =
      if all_workloads then
        List.map
          (fun (w : Core.Workloads.Registry.t) -> w.name)
          Core.Workloads.Registry.all
      else workloads
    in
    if files = [] && workloads = [] then begin
      Fmt.epr "nothing to audit: give FILEs, --workload or --workloads@.";
      exit 2
    end;
    let cli_inputs = parse_inputs inputs in
    let file_targets =
      List.map
        (fun file ->
          let program, source, diags =
            parse_with_diagnostics ~inputs:(List.map fst cli_inputs) file
          in
          match program with
          | Some p when diags = [] ->
            let report = Audit.run ~config ~inputs:cli_inputs p in
            ( file,
              Some source,
              report.Audit.diags,
              Audit.result_json ~target:file ~deny_warnings config report )
          | _ ->
            let diags = Diag.normalize diags in
            ( file,
              Some source,
              diags,
              Audit.diags_json ~target:file ~deny_warnings diags ))
        files
    in
    let workload_targets =
      List.map
        (fun name ->
          let w = lookup_workload name in
          let scale = Option.value ~default:w.default_scale scale in
          let report = Core.Pipeline.audit ~config ~workload:w ~scale () in
          ( name,
            None,
            report.Audit.diags,
            Audit.result_json ~target:name ~scale ~deny_warnings config report
          ))
        workloads
    in
    let targets = file_targets @ workload_targets in
    let all_diags = List.concat_map (fun (_, _, ds, _) -> ds) targets in
    (match format with
    | `Json ->
      print_endline
        (J.to_string
           (J.Obj
              [
                ("ok", J.Bool (not (Diag.fails ~deny_warnings all_diags)));
                ("targets", J.List (List.map (fun (_, _, _, j) -> j) targets));
              ]))
    | `Text ->
      List.iter
        (fun (target, source, ds, _) ->
          List.iter (fun d -> Fmt.pr "%a@." (Diag.render ?source ()) d) ds;
          Fmt.pr "%s: %s@." target
            (if ds = [] then "clean" else Diag.summary ds))
        targets);
    if Diag.fails ~deny_warnings all_diags then exit 1
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Statically audit skeletons with the symbolic cost model: scaling, \
          working-set and communication-deadlock rules (A001..A008; see \
          --rules)")
    Term.(
      const run $ files_arg $ audit_workloads_arg $ all_workloads_arg
      $ scale_arg $ inputs_arg $ format_arg $ deny_arg $ disable_arg
      $ only_arg $ rules_flag $ machine_arg $ ranks_arg $ trace_arg)

let print_analysis machine program inputs criteria k =
  let built =
    Core.Bet.Build.build
      ~lib_work:(Core.Hw.Libmix.work_fn Core.Hw.Libmix.default)
      ~inputs program
  in
  let proj = Core.Analysis.Perf.project machine built in
  Span.with_ ~name:"report" (fun () ->
      Table.print (spots_table "" proj.total_time proj.blocks k));
  let sel =
    Span.with_ ~name:"hotspot" (fun () ->
        Hotspot.select ~criteria
          ~total_instructions:(Core.Bet.Bst.total_instructions built.bst)
          proj.blocks)
  in
  Fmt.pr "@.selection: %d spots, coverage %s, leanness %s@."
    (List.length sel.spots) (pct sel.coverage) (pct sel.leanness);
  if sel.spots = [] && proj.blocks <> [] then
    Fmt.pr
      "hint: no block fits the %s leanness budget — kernels without \
       cold-code bulk usually need a looser --leanness@."
      (pct criteria.Hotspot.code_leanness);
  Fmt.pr "BET: %d nodes (program: %d statements); total projected %.4g ms@."
    built.node_count
    (Core.Skeleton.Ast.program_size program)
    (proj.total_time *. 1e3);
  List.iter (fun w -> Fmt.pr "warning: %s@." w) built.warnings

let cmd_analyze =
  let run workload machine scale k file inputs coverage leanness trace =
    let m = lookup_machine machine in
    let criteria =
      { Hotspot.time_coverage = coverage; code_leanness = leanness }
    in
    with_trace trace ~root:"analyze" @@ fun () ->
    match file with
    | Some f ->
      let program, inputs = load_file f inputs in
      Fmt.pr "Projected hot spots of %s on %s:@.@." f m.name;
      print_analysis m program inputs criteria k
    | None ->
      let w = lookup_workload workload in
      let scale = Option.value ~default:w.default_scale scale in
      let program, winputs =
        Span.with_ ~name:"workload_make" ~attrs:[ ("workload", w.name) ]
          (fun () -> w.make ~scale)
      in
      Fmt.pr "Projected hot spots of %s on %s (no target execution):@.@."
        w.name m.name;
      print_analysis m program winputs criteria k
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Project hot spots analytically for a target machine")
    Term.(
      const run $ workload_arg $ machine_arg $ scale_arg $ top_arg $ file_arg
      $ inputs_arg $ coverage_arg $ leanness_arg $ trace_arg)

let cmd_validate =
  let run workload machine scale k coverage leanness trace =
    let w = lookup_workload workload in
    let m = lookup_machine machine in
    let criteria =
      { Hotspot.time_coverage = coverage; code_leanness = leanness }
    in
    with_trace trace ~root:"validate" @@ fun () ->
    let r = P.run ~criteria ?scale ~machine:m w in
    Fmt.pr "=== %s on %s (scale %.3g) ===@.@." w.name m.name r.P.scale;
    Table.print
      (spots_table
         (Fmt.str "Prof: measured (simulated) hot spots, total %.4g ms"
            (r.P.measured.total_time *. 1e3))
         (Blockstat.total_time r.P.measured.blocks)
         r.P.measured.blocks k);
    Fmt.pr "@.";
    Table.print
      (spots_table
         (Fmt.str "Modl: projected hot spots, total %.4g ms"
            (r.P.projection.total_time *. 1e3))
         r.P.projection.total_time r.P.projection.blocks k);
    Fmt.pr "@.selection quality Q(%d) = %s@." k (pct (P.model_quality r ~k));
    match P.hot_path r with
    | Some path ->
      Fmt.pr "@.Hot path (model selection):@.%a@."
        (Core.Analysis.Hotpath.pp ~total_time:r.P.projection.total_time)
        path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Compare the projection against the simulator ground truth")
    Term.(
      const run $ workload_arg $ machine_arg $ scale_arg $ top_arg
      $ coverage_arg $ leanness_arg $ trace_arg)

let cmd_spots =
  let run workload machine scale k =
    let w = lookup_workload workload in
    let m = lookup_machine machine in
    let r = P.run ?scale ~machine:m w in
    let sel = r.P.model_sel in
    Fmt.pr
      "Hot spot invocation contexts for %s on %s (paper SSV-C: \"different \
       invocations of the same hot spot\"):@."
      w.name m.name;
    List.iteri
      (fun i (stat, invocations) ->
        if i < k then begin
          Fmt.pr "@.%d. %s (%.4g ms total, %d invocation site%s)@." (i + 1)
            stat.Blockstat.name
            (stat.Blockstat.time *. 1e3)
            (List.length invocations)
            (if List.length invocations = 1 then "" else "s");
          List.iter
            (fun inv ->
              Fmt.pr "   %a@." Core.Analysis.Invocations.pp_invocation inv)
            invocations
        end)
      (Core.Analysis.Invocations.of_selection r.P.built r.P.projection sel)
  in
  Cmd.v
    (Cmd.info "spots"
       ~doc:"Show every invocation context of each hot spot")
    Term.(const run $ workload_arg $ machine_arg $ scale_arg $ top_arg)

let cmd_path =
  let dot_arg =
    let doc = "Write the hot path as Graphviz DOT to this file." in
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)
  in
  let run workload machine scale dot =
    let w = lookup_workload workload in
    let m = lookup_machine machine in
    let r = P.run ?scale ~machine:m w in
    match P.hot_path r with
    | None ->
      Fmt.epr "no hot path@.";
      exit 1
    | Some path -> (
      Fmt.pr "%a@."
        (Core.Analysis.Hotpath.pp ~total_time:r.P.projection.total_time)
        path;
      match dot with
      | Some file ->
        let oc = open_out file in
        output_string oc
          (Core.Report.Render.dot_of_hotpath ~graph_name:w.name path);
        close_out oc;
        Fmt.pr "wrote %s@." file
      | None -> ())
  in
  Cmd.v
    (Cmd.info "path" ~doc:"Print (and optionally export) the hot path")
    Term.(const run $ workload_arg $ machine_arg $ scale_arg $ dot_arg)

let cmd_compare =
  let other_arg =
    let doc = "Second machine to compare against." in
    Arg.(value & opt string "xeon" & info [ "against" ] ~docv:"MACHINE" ~doc)
  in
  let run workload machine other scale k =
    let w = lookup_workload workload in
    let ma = lookup_machine machine and mb = lookup_machine other in
    let scale = Option.value ~default:w.default_scale scale in
    let blocks m =
      (P.analyze ~machine:m ~workload:w ~scale ()).P.a_projection.blocks
    in
    let ba = blocks ma and bb = blocks mb in
    let total l = Blockstat.total_time l in
    let ta = total ba and tb = total bb in
    let rank l id =
      let rec go i = function
        | [] -> "-"
        | (b : Blockstat.t) :: rest ->
          if Core.Bet.Block_id.equal b.block id then string_of_int i
          else go (i + 1) rest
      in
      go 1 l
    in
    let rows =
      Hotspot.top_k ~k ba
      |> List.map (fun (b : Blockstat.t) ->
             let share l t =
               match Blockstat.find l b.block with
               | Some x when t > 0. -> pct (x.Blockstat.time /. t)
               | _ -> "-"
             in
             [ b.name; share ba ta; rank ba b.block; share bb tb;
               rank bb b.block ])
    in
    Table.print
      (Table.make
         ~title:
           (Fmt.str "%s: %s (%.4g ms) vs %s (%.4g ms)" w.name ma.name
              (ta *. 1e3) mb.name (tb *. 1e3))
         ~headers:
           [ "block"; ma.name ^ " share"; "rank"; mb.name ^ " share"; "rank" ]
         ~aligns:Table.[ Left; Right; Right; Right; Right ]
         rows);
    Fmt.pr "@.top-%d overlap: %d; rank agreement: %.2f@." k
      (Quality.overlap ~a:ba ~b:bb ~k)
      (Quality.rank_agreement ~a:ba ~b:bb ~k)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare projected hot spots across two machines")
    Term.(
      const run $ workload_arg $ machine_arg $ other_arg $ scale_arg $ top_arg)

let cmd_import =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c") in
  let out_arg =
    let doc = "Write the generated skeleton to this file." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run file out =
    match Core.Frontend.C_parser.parse_file file with
    | exception Core.Frontend.C_lexer.Error (line, m) ->
      Fmt.epr "%s:%d: %s@." file line m;
      exit 1
    | exception Core.Frontend.C_parser.Error (line, m) ->
      Fmt.epr "%s:%d: %s@." file line m;
      exit 1
    | cprog -> (
      match Core.Frontend.Abstract.lower ~name:(Filename.remove_extension (Filename.basename file)) cprog with
      | exception Core.Frontend.Abstract.Error (line, m) ->
        Fmt.epr "%s:%d: %s@." file line m;
        exit 1
      | r ->
        List.iter (fun w -> Fmt.epr "warning: %s@." w) r.warnings;
        let text = Core.Skeleton.Pretty.to_string r.program in
        (match out with
        | Some path ->
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          Fmt.pr "wrote %s (%d statements; bind inputs: %s)@." path
            (Core.Skeleton.Ast.program_size r.program)
            (String.concat ", " (List.map fst r.params))
        | None ->
          Fmt.pr "# inputs to bind: %s@."
            (String.concat ", " (List.map fst r.params));
          Fmt.pr "%s@." text))
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:
         "Convert a mini-C source file into a code skeleton (the paper's \
          source-to-source analysis engine)")
    Term.(const run $ file $ out_arg)

let cmd_roofline =
  let run workload machine scale k =
    let w = lookup_workload workload in
    let m = lookup_machine machine in
    let scale = Option.value ~default:w.default_scale scale in
    let a = P.analyze ~machine:m ~workload:w ~scale () in
    Table.print
      (Core.Report.Render.roofline_table m a.P.a_projection.blocks ~k)
  in
  Cmd.v
    (Cmd.info "roofline"
       ~doc:"Position each hot spot under the machine's roofline")
    Term.(const run $ workload_arg $ machine_arg $ scale_arg $ top_arg)

let cmd_json =
  let run workload machine scale =
    let w = lookup_workload workload in
    let m = lookup_machine machine in
    let scale = Option.value ~default:w.default_scale scale in
    let a = P.analyze ~machine:m ~workload:w ~scale () in
    let json =
      Core.Report.Json.Obj
        [
          ("workload", Core.Report.Json.String w.name);
          ("scale", Core.Report.Json.Float scale);
          ( "projection",
            Core.Report.Render.json_of_projection a.P.a_projection );
          ("selection", Core.Report.Render.json_of_selection a.P.a_selection);
        ]
    in
    print_endline (Core.Report.Json.to_string json)
  in
  Cmd.v
    (Cmd.info "json"
       ~doc:"Emit the analytic projection as JSON for downstream tools")
    Term.(const run $ workload_arg $ machine_arg $ scale_arg)

let cmd_hints =
  let run workload scale =
    let w = lookup_workload workload in
    let scale = Option.value ~default:w.default_scale scale in
    let program, inputs = w.make ~scale in
    let hints = P.profile ~libmix:w.libmix ~inputs program in
    Fmt.pr "%a@." Core.Bet.Hints.pp hints
  in
  Cmd.v
    (Cmd.info "hints"
       ~doc:"Show the branch statistics one local profiling run collects")
    Term.(const run $ workload_arg $ scale_arg)

let cmd_miniapp =
  let out_arg =
    let doc = "Write the generated skeleton to this file." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run workload machine scale out =
    let w = lookup_workload workload in
    let m = lookup_machine machine in
    let r = P.run ?scale ~machine:m w in
    match P.hot_path r with
    | None ->
      Fmt.epr "no hot path@.";
      exit 1
    | Some path ->
      let mini =
        Core.Analysis.Miniapp.generate ~program:r.P.program ~inputs:r.P.inputs
          path
      in
      let text = Core.Skeleton.Pretty.to_string mini.program in
      (match out with
      | Some file ->
        let oc = open_out file in
        output_string oc text;
        close_out oc;
        Fmt.pr "wrote %s (%d statements, from %d)@." file
          mini.retained_statements mini.original_statements
      | None -> Fmt.pr "%s@." text)
  in
  Cmd.v
    (Cmd.info "miniapp"
       ~doc:"Generate a mini-application skeleton from the hot path")
    Term.(const run $ workload_arg $ machine_arg $ scale_arg $ out_arg)

let cmd_sweep =
  let axis_arg =
    let doc = "Design axis: bw, lat, vec, issue, freq, l2, div." in
    Arg.(value & opt string "bw" & info [ "axis" ] ~docv:"AXIS" ~doc)
  in
  let values_arg =
    let doc = "Comma-separated values for the axis." in
    Arg.(value & opt string "1,2,4,8" & info [ "values" ] ~docv:"V1,V2,.." ~doc)
  in
  let run workload machine axis values trace =
    with_trace trace ~root:"sweep" @@ fun () ->
    let w = lookup_workload workload in
    let base = lookup_machine machine in
    let axis = axis_of_parts axis values in
    Fmt.pr "Sweeping %s of %s for %s:@."
      (Core.Hw.Designspace.axis_name axis)
      base.name w.name;
    List.iter
      (fun (tag, machine) ->
        let a =
          P.analyze ~machine ~workload:w ~scale:w.default_scale ()
        in
        let top =
          match a.P.a_projection.blocks with
          | b :: _ ->
            Fmt.str "#1 %s (%a)" b.Blockstat.name Core.Hw.Roofline.pp_bound
              b.Blockstat.bound
          | [] -> "-"
        in
        Fmt.pr "  %8s -> %10.3f ms | %s@." tag
          (a.P.a_projection.total_time *. 1e3)
          top)
      (Core.Hw.Designspace.variants base axis)
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Explore one hardware design axis analytically")
    Term.(
      const run $ workload_arg $ machine_arg $ axis_arg $ values_arg
      $ trace_arg)

let cmd_explore =
  let module J = Core.Report.Json in
  let module Explore = Skope_explore.Explore in
  let sample_arg =
    let doc = "Latin-hypercube sample this many grid points instead of the \
               full cartesian product." in
    Arg.(value & opt (some int) None & info [ "sample" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Sampling seed (with --sample)." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let jobs_arg =
    let doc = "Worker domains for grid evaluation (0: one per core)." in
    Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"J" ~doc)
  in
  let json_of_point (p : Explore.point) =
    let tc, tm, ov = Explore.split p.Explore.outcome in
    J.Obj
      [
        ("tag", J.String p.Explore.tag);
        ( "values",
          J.Obj (List.map (fun (k, v) -> (k, J.Float v)) p.Explore.values) );
        ("total_ms", J.Float (p.Explore.time *. 1e3));
        ( "split",
          J.Obj
            [
              ("tc_ms", J.Float (tc *. 1e3));
              ("tm_ms", J.Float (tm *. 1e3));
              ("to_ms", J.Float (ov *. 1e3));
            ] );
        ("cost", J.Float p.Explore.cost);
      ]
  in
  let run workload machine scale axes sample seed jobs engine coverage
      leanness format trace =
    with_trace trace ~root:"explore" @@ fun () ->
    if axes = [] then begin
      Fmt.epr "nothing to explore: give at least one --axis KEY=V1,V2,...@.";
      exit 2
    end;
    let axes = List.map parse_axis_spec axes in
    let w = lookup_workload workload in
    let base = lookup_machine machine in
    let scale = Option.value ~default:w.default_scale scale in
    let criteria =
      { Hotspot.time_coverage = coverage; code_leanness = leanness }
    in
    let pts = Explore.grid_points ?sample ~seed base axes in
    let jobs =
      if jobs > 0 then jobs
      else min (Domain.recommended_domain_count ()) (List.length pts)
    in
    (* The machine-independent prefix runs exactly once; every grid
       point below only re-prices the shared BET through the selected
       engine. *)
    let prepared = P.Prepared.create ~engine ~workload:w ~scale () in
    let on_point =
      match format with
      | `Ndjson ->
        Some
          (fun p ->
            print_endline (J.to_string (json_of_point p));
            flush stdout)
      | `Text | `Json -> None
    in
    let r = Explore.evaluate ~jobs ~criteria ?on_point prepared pts in
    let pareto_tags =
      List.map (fun (p : Explore.point) -> p.Explore.tag) r.Explore.pareto
    in
    match format with
    | `Ndjson ->
      print_endline
        (J.to_string
           (J.Obj
              [
                ("points", J.Int (List.length r.Explore.points));
                ("pareto", J.List (List.map (fun t -> J.String t) pareto_tags));
                ("elapsed_ms", J.Float (r.Explore.elapsed *. 1e3));
              ]))
    | `Json ->
      print_endline
        (J.to_string
           (J.Obj
              [
                ("workload", J.String w.name);
                ("machine", J.String base.name);
                ( "axes",
                  J.List
                    (List.map
                       (fun a ->
                         J.String (Core.Hw.Designspace.axis_key a))
                       axes) );
                ( "points",
                  J.List (List.map json_of_point r.Explore.points) );
                ("pareto", J.List (List.map (fun t -> J.String t) pareto_tags));
                ("elapsed_ms", J.Float (r.Explore.elapsed *. 1e3));
              ]))
    | `Text ->
      let rows =
        List.map
          (fun (p : Explore.point) ->
            let tc, tm, ov = Explore.split p.Explore.outcome in
            [
              p.Explore.tag;
              Fmt.str "%.4g" (p.Explore.time *. 1e3);
              Fmt.str "%.4g" (tc *. 1e3);
              Fmt.str "%.4g" (tm *. 1e3);
              Fmt.str "%.4g" (ov *. 1e3);
              Fmt.str "%.1f" p.Explore.cost;
              (if List.mem p.Explore.tag pareto_tags then "*" else "");
            ])
          r.Explore.points
      in
      Table.print
        (Table.make
           ~title:
             (Fmt.str "%s on %s: %d-point design space" w.name base.name
                (List.length r.Explore.points))
           ~headers:[ "point"; "ms"; "Tc"; "Tm"; "To"; "cost"; "pareto" ]
           ~aligns:Table.[ Left; Right; Right; Right; Right; Right; Left ]
           rows);
      Fmt.pr
        "@.%d points priced against one BET (%d nodes, %s engine) with %d \
         domain%s in %.0f ms; pareto: %s@."
        (List.length r.Explore.points)
        (P.Prepared.built prepared).Core.Bet.Build.node_count
        (P.engine_to_string engine) jobs
        (if jobs = 1 then "" else "s")
        (r.Explore.elapsed *. 1e3)
        (String.concat ", " pareto_tags)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Explore a multi-axis hardware design space against one shared BET \
          (build once, price per point) and report the Pareto frontier over \
          projected time and a hardware cost proxy")
    Term.(
      const run $ workload_arg $ machine_arg $ scale_arg $ axes_arg
      $ sample_arg $ seed_arg $ jobs_arg $ engine_arg $ coverage_arg
      $ leanness_arg $ format_stream_arg $ trace_arg)

let cmd_nodes =
  let ranks_arg =
    let doc = "Comma-separated rank counts." in
    Arg.(
      value
      & opt string "1,2,4,8,16,32,64,128"
      & info [ "ranks" ] ~docv:"P1,P2,.." ~doc)
  in
  let network_arg =
    let doc = "Interconnect: torus, infiniband, ethernet." in
    Arg.(value & opt string "torus" & info [ "network" ] ~docv:"NET" ~doc)
  in
  let run machine scale ranks network =
    let w = lookup_workload "sord" in
    let m = lookup_machine machine in
    let scale = Option.value ~default:w.default_scale scale in
    let network =
      match String.lowercase_ascii network with
      | "torus" -> Core.Multinode.Network.bgq_torus
      | "infiniband" | "ib" -> Core.Multinode.Network.infiniband
      | "ethernet" | "eth" -> Core.Multinode.Network.ethernet
      | other ->
        Fmt.epr "unknown network %S@." other;
        exit 2
    in
    let ranks =
      String.split_on_char ',' ranks |> List.filter_map int_of_string_opt
    in
    let a = P.analyze ~machine:m ~workload:w ~scale () in
    let _, inputs = w.make ~scale in
    let dim name =
      match List.assoc_opt name inputs with
      | Some v -> int_of_float (Core.Bet.Value.to_float v)
      | None -> 1
    in
    let spec =
      Core.Multinode.Project.sord_spec ~nx:(dim "nx") ~ny:(dim "ny")
        ~nz:(dim "nz") ~steps:(dim "nt")
    in
    let s =
      Core.Multinode.Project.strong_scaling ~spec ~network
        ~t_single:a.P.a_projection.total_time ~ranks_list:ranks ()
    in
    Fmt.pr "SORD strong scaling on %s over %a:@." m.name
      Core.Multinode.Network.pp network;
    List.iter
      (fun p -> Fmt.pr "  %a@." Core.Multinode.Project.pp_point p)
      s.points
  in
  Cmd.v
    (Cmd.info "nodes" ~doc:"Multi-node strong-scaling projection (SORD)")
    Term.(const run $ machine_arg $ scale_arg $ ranks_arg $ network_arg)

let cmd_serve =
  let port_arg =
    let doc = "TCP port to listen on (0 picks an ephemeral port)." in
    Arg.(value & opt int 7777 & info [ "p"; "port" ] ~docv:"PORT" ~doc)
  in
  let host_arg =
    let doc = "Address to bind." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)
  in
  let pool_arg =
    let doc = "Worker domains (default: cores - 1)." in
    Arg.(value & opt (some int) None & info [ "pool" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc = "Bounded work-queue capacity." in
    Arg.(value & opt int 128 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let cache_arg =
    let doc = "Projection-cache capacity (LRU entries)." in
    Arg.(value & opt int 4096 & info [ "cache" ] ~docv:"N" ~doc)
  in
  let sock_timeout_arg =
    let doc = "Per-connection socket read/write deadline, seconds." in
    Arg.(value & opt float 10. & info [ "sock-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let fault_inject_arg =
    let doc =
      "Arm fault injection, e.g. \
       $(b,drop=0.3,delay_p=0.2,delay_ms=50,overload=0.1,truncate=0.05) \
       (probabilities per connection).  For resilience testing only."
    in
    Arg.(
      value & opt (some string) None & info [ "fault-inject" ] ~docv:"SPEC" ~doc)
  in
  let fault_seed_arg =
    let doc = "Seed for the fault-injection decision stream." in
    Arg.(value & opt int 42 & info [ "fault-seed" ] ~docv:"N" ~doc)
  in
  let cluster_arg =
    let doc =
      "Run an in-process cluster: N skoped shards on ephemeral ports plus a \
       cache-affinity router on --port."
    in
    Arg.(value & opt int 0 & info [ "cluster" ] ~docv:"N" ~doc)
  in
  let run port host pool queue cache sock_timeout fault_spec fault_seed cluster =
    let module S = Skope_service.Server in
    let module F = Skope_service.Faults in
    let faults =
      match fault_spec with
      | None -> None
      | Some spec -> (
        match F.spec_of_string spec with
        | Ok s -> Some (F.create ~seed:fault_seed s)
        | Error msg ->
          Fmt.epr "skope serve: bad --fault-inject: %s@." msg;
          exit 2)
    in
    if cluster > 0 then begin
      if faults <> None then begin
        Fmt.epr
          "skope serve: --fault-inject only applies to a single skoped; fault \
           a shard directly instead@.";
        exit 2
      end;
      let module Local = Skope_cluster.Local in
      let stop = Atomic.make false in
      let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
      ignore (Sys.signal Sys.sigint on_signal);
      ignore (Sys.signal Sys.sigterm on_signal);
      match
        Local.start ~stop ~host ~router_port:port ~shards:cluster
          ?shard_pool:pool ~shard_queue:queue ~cache_capacity:cache ()
      with
      | exception Failure msg ->
        Fmt.epr "skope serve: %s@." msg;
        exit 1
      | exception Unix.Unix_error (e, fn, _) ->
        Fmt.epr "skope serve: %s (%s %s:%d)@." (Unix.error_message e) fn host
          port;
        exit 1
      | c ->
        let ids = Local.shard_ids c and ports = Local.shard_ports c in
        Array.iteri
          (fun i id -> Fmt.pr "shard %s on %s:%d@." id host ports.(i))
          ids;
        Fmt.pr "skoped cluster router listening on %s:%d (%d shards)@." host
          (Local.router_port c) cluster;
        Local.join c;
        exit 0
    end;
    let config =
      {
        S.port;
        host;
        queue_capacity = queue;
        pool = Option.value ~default:S.default_config.S.pool pool;
        read_timeout_s = sock_timeout;
        write_timeout_s = sock_timeout;
        faults;
        dispatch =
          { Skope_service.Dispatch.default_config with cache_capacity = cache };
      }
    in
    try S.run config
    with Unix.Unix_error (e, fn, _) ->
      Fmt.epr "skope serve: %s (%s %s:%d)@." (Unix.error_message e) fn host
        port;
      exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run skoped: serve analyze/sweep/catalog/stats queries over \
          JSON-over-TCP with a domain worker pool, a projection cache, load \
          shedding and optional fault injection")
    Term.(
      const run $ port_arg $ host_arg $ pool_arg $ queue_arg $ cache_arg
      $ sock_timeout_arg $ fault_inject_arg $ fault_seed_arg $ cluster_arg)

let cmd_route =
  let module Router = Skope_cluster.Router in
  let shards_arg =
    let doc =
      "A shard to route to, as HOST:PORT, PORT, or ID=HOST:PORT (repeatable; \
       ids default to s0, s1, ... in flag order)."
    in
    Arg.(value & opt_all string [] & info [ "shard" ] ~docv:"SPEC" ~doc)
  in
  let port_arg =
    let doc = "TCP port the router listens on (0 picks an ephemeral port)." in
    Arg.(value & opt int 7878 & info [ "p"; "port" ] ~docv:"PORT" ~doc)
  in
  let host_arg =
    let doc = "Address to bind." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)
  in
  let pool_arg =
    let doc = "Router worker domains." in
    Arg.(value & opt int 4 & info [ "pool" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc = "Bounded work-queue capacity." in
    Arg.(value & opt int 128 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let vnodes_arg =
    let doc = "Virtual nodes per shard on the hash ring." in
    Arg.(value & opt int 128 & info [ "vnodes" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Ring placement seed (same seed, same placement)." in
    Arg.(value & opt int 42 & info [ "ring-seed" ] ~docv:"SEED" ~doc)
  in
  let probe_arg =
    let doc = "Health-probe interval, milliseconds." in
    Arg.(value & opt float 2000. & info [ "probe-interval-ms" ] ~docv:"MS" ~doc)
  in
  let fall_arg =
    let doc = "Consecutive failures before a shard is ejected." in
    Arg.(value & opt int 3 & info [ "fall" ] ~docv:"N" ~doc)
  in
  let rise_arg =
    let doc = "Consecutive probe successes before readmission." in
    Arg.(value & opt int 2 & info [ "rise" ] ~docv:"N" ~doc)
  in
  let load_factor_arg =
    let doc =
      "Bounded-load factor: divert a key when its owner carries more than \
       FACTOR times the mean in-flight load (0 disables)."
    in
    Arg.(value & opt float 1.25 & info [ "load-factor" ] ~docv:"FACTOR" ~doc)
  in
  let parse_member i spec =
    let fail () =
      Fmt.epr "skope route: invalid --shard %S (expected HOST:PORT, PORT or \
               ID=HOST:PORT)@." spec;
      exit 2
    in
    let id, addr =
      match String.index_opt spec '=' with
      | Some j ->
        ( String.sub spec 0 j,
          String.sub spec (j + 1) (String.length spec - j - 1) )
      | None -> (Printf.sprintf "s%d" i, spec)
    in
    let host, port_s =
      match String.rindex_opt addr ':' with
      | Some j ->
        ( String.sub addr 0 j,
          String.sub addr (j + 1) (String.length addr - j - 1) )
      | None -> ("127.0.0.1", addr)
    in
    match int_of_string_opt port_s with
    | Some port when port > 0 && id <> "" && host <> "" ->
      { Router.m_id = id; m_host = host; m_port = port }
    | _ -> fail ()
  in
  let run shards port host pool queue vnodes ring_seed probe_ms fall rise
      load_factor =
    if shards = [] then begin
      Fmt.epr "skope route: no shards (give at least one --shard HOST:PORT)@.";
      exit 2
    end;
    let members = List.mapi parse_member shards in
    let config =
      {
        Router.default_config with
        Router.host;
        port;
        pool;
        queue_capacity = queue;
        members;
        vnodes;
        ring_seed;
        probe_interval_s = probe_ms /. 1e3;
        health = { Skope_cluster.Health.fall; rise };
        load_factor;
      }
    in
    match Router.run config with
    | () -> ()
    | exception Invalid_argument msg ->
      Fmt.epr "skope route: %s@." msg;
      exit 2
    | exception Unix.Unix_error (e, fn, _) ->
      Fmt.epr "skope route: %s (%s %s:%d)@." (Unix.error_message e) fn host
        port;
      exit 1
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Run the cluster router: forward queries to skoped shards by \
          projection fingerprint over a consistent-hash ring, with health \
          probes, ejection and failover")
    Term.(
      const run $ shards_arg $ port_arg $ host_arg $ pool_arg $ queue_arg
      $ vnodes_arg $ seed_arg $ probe_arg $ fall_arg $ rise_arg
      $ load_factor_arg)

let cmd_query =
  let module J = Core.Report.Json in
  let port_arg =
    let doc = "Server port." in
    Arg.(value & opt int 7777 & info [ "p"; "port" ] ~docv:"PORT" ~doc)
  in
  let host_arg =
    let doc = "Server address." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)
  in
  let kind_arg =
    let doc =
      "Request kind: analyze, sweep, explore, lint, workloads, machines, \
       stats, metrics_prom, version, capabilities, cluster_stats (router \
       only), recent (flight-recorder readback), trace (one request's span \
       tree; needs --trace-id)."
    in
    Arg.(value & opt string "analyze" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let stats_flag =
    let doc =
      "Fetch server stats and render the per-phase latency breakdown as a \
       table (shorthand for --kind stats plus formatting)."
    in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let axis_arg =
    let doc = "Sweep axis: bw, lat, vec, issue, freq, l2, div." in
    Arg.(value & opt string "bw" & info [ "axis" ] ~docv:"AXIS" ~doc)
  in
  let values_arg =
    let doc = "Comma-separated sweep values." in
    Arg.(value & opt string "1,2,4,8" & info [ "values" ] ~docv:"V1,V2,.." ~doc)
  in
  let axes_arg =
    let doc =
      "Explore axis as KEY=V1,V2,... (repeatable; for --kind explore)."
    in
    Arg.(value & opt_all string [] & info [ "axes" ] ~docv:"KEY=V1,V2,.." ~doc)
  in
  let sample_arg =
    let doc = "Latin-hypercube sample size for --kind explore." in
    Arg.(value & opt (some int) None & info [ "sample" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Sampling seed for --kind explore." in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let override_arg =
    let doc = "Machine-parameter override KEY=VALUE (repeatable)." in
    Arg.(value & opt_all string [] & info [ "O"; "override" ] ~docv:"K=V" ~doc)
  in
  let timeout_arg =
    let doc = "Per-request deadline in milliseconds." in
    Arg.(value & opt (some float) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)
  in
  let body_arg =
    let doc = "Send this raw JSON body instead of building one from flags." in
    Arg.(value & opt (some string) None & info [ "body" ] ~docv:"JSON" ~doc)
  in
  let trace_id_arg =
    let doc =
      "Propagate this trace id with the request (the server adopts it \
       instead of minting one, and echoes it in the response); with --kind \
       trace, the id to look up in the flight recorder."
    in
    Arg.(value & opt (some string) None & info [ "trace-id" ] ~docv:"ID" ~doc)
  in
  let chrome_arg =
    let doc =
      "With --kind trace: also write the merged result as Chrome \
       trace_event JSON to $(docv) (load it in chrome://tracing or \
       Perfetto)."
    in
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE" ~doc)
  in
  let last_arg =
    let doc = "With --kind recent: how many records to return." in
    Arg.(value & opt int 20 & info [ "last" ] ~docv:"N" ~doc)
  in
  let errors_only_arg =
    let doc = "With --kind recent: only failed requests." in
    Arg.(value & flag & info [ "errors-only" ] ~doc)
  in
  let min_ms_arg =
    let doc = "With --kind recent: only requests at least this slow." in
    Arg.(value & opt (some float) None & info [ "min-ms" ] ~docv:"MS" ~doc)
  in
  let repeat_arg =
    let doc = "Send the request N times (load-generator mode when > 1)." in
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N" ~doc)
  in
  let corpus_arg =
    let doc =
      "Replay a generated corpus (a directory written by $(b,skope gen \
       --out)) as load-generator traffic: one --kind lint or audit request \
       per skeleton, cycled round-robin.  --repeat defaults to one pass \
       over the corpus."
    in
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR" ~doc)
  in
  let concurrency_arg =
    let doc = "Client threads for load-generator mode." in
    Arg.(value & opt int 1 & info [ "concurrency" ] ~docv:"K" ~doc)
  in
  let retries_arg =
    let doc =
      "Retry budget per request (0 disables retries).  Retries use capped \
       exponential backoff with seeded jitter and honor the server's \
       retry_after_ms hint on overloaded responses."
    in
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let retry_base_arg =
    let doc = "First backoff step, milliseconds." in
    Arg.(value & opt float 50. & info [ "retry-base-ms" ] ~docv:"MS" ~doc)
  in
  let retry_max_arg =
    let doc = "Backoff cap, milliseconds." in
    Arg.(value & opt float 2000. & info [ "retry-max-ms" ] ~docv:"MS" ~doc)
  in
  let retry_seed_arg =
    let doc = "Backoff jitter seed (same seed, same schedule)." in
    Arg.(value & opt int 42 & info [ "retry-seed" ] ~docv:"N" ~doc)
  in
  let connect_timeout_arg =
    let doc = "TCP connect deadline, milliseconds." in
    Arg.(
      value & opt float 5000. & info [ "connect-timeout-ms" ] ~docv:"MS" ~doc)
  in
  let io_timeout_arg =
    let doc = "Socket read/write deadline, milliseconds." in
    Arg.(value & opt float 30000. & info [ "io-timeout-ms" ] ~docv:"MS" ~doc)
  in
  (* Typed request construction: a missing or misspelled field is
     caught here instead of coming back as a server error.  The --body
     flag below remains the raw-JSON escape hatch. *)
  let build_body kind workload machine scale top coverage leanness engine axis
      values axes sample seed overrides timeout_ms trace_id last errors_only
      min_ms =
    let module A = Skope_service.Service_api in
    let overrides =
      List.map
        (fun spec ->
          match String.index_opt spec '=' with
          | Some i -> (
            let k = String.sub spec 0 i in
            let v = String.sub spec (i + 1) (String.length spec - i - 1) in
            match float_of_string_opt v with
            | Some f -> (k, f)
            | None ->
              Fmt.epr "invalid override %S (expected KEY=NUMBER)@." spec;
              exit 2)
          | None ->
            Fmt.epr "invalid override %S (expected KEY=NUMBER)@." spec;
            exit 2)
        overrides
    in
    let opts = { A.scale; top; coverage; leanness; overrides; engine } in
    let axis_spec spec =
      match String.index_opt spec '=' with
      | Some i ->
        ( String.sub spec 0 i,
          parse_values (String.sub spec (i + 1) (String.length spec - i - 1))
        )
      | None ->
        Fmt.epr "invalid axis %S (expected KEY=V1,V2,...)@." spec;
        exit 2
    in
    let request =
      match kind with
      | "analyze" -> A.analyze ~opts ~workload ~machine ()
      | "sweep" ->
        A.sweep ~opts ~workload ~machine ~axis ~values:(parse_values values) ()
      | "explore" ->
        if axes = [] then begin
          Fmt.epr "--kind explore needs at least one --axes KEY=V1,V2,...@.";
          exit 2
        end;
        A.explore ~opts ?sample ?seed ~workload ~machine
          ~axes:(List.map axis_spec axes) ()
      | "lint" -> A.lint_workload workload
      | "workloads" -> A.Workloads
      | "machines" -> A.Machines
      | "stats" -> A.Stats
      | "metrics_prom" -> A.Metrics_prom
      | "version" -> A.Version
      | "capabilities" -> A.Capabilities
      | "cluster_stats" -> A.Cluster_stats
      | "recent" -> A.recent ~n:last ~errors_only ?min_ms ()
      | "trace" -> (
        match trace_id with
        | Some id -> A.trace ~id ()
        | None ->
          Fmt.epr "--kind trace needs --trace-id ID@.";
          exit 2)
      | other ->
        Fmt.epr "unknown request kind %S@." other;
        exit 2
    in
    (* A trace *lookup* must not adopt the id it is looking up: the
       lookup's own record would shadow the target in the recorder. *)
    let trace_id = if kind = "trace" then None else trace_id in
    A.to_body ?timeout_ms ?trace_id request
  in
  (* Render the stats response's per-phase histograms as a table. *)
  let print_stats response =
    match J.of_string response with
    | Ok r when J.member "ok" r = Some (J.Bool true) ->
      let result = Option.value ~default:(J.Obj []) (J.member "result" r) in
      let metrics = Option.value ~default:(J.Obj []) (J.member "metrics" result) in
      let int_of key json =
        Option.bind (J.member key json) J.to_int_opt |> Option.value ~default:0
      in
      let num_of key json =
        Option.bind (J.member key json) J.to_float_opt
        |> Option.value ~default:0.
      in
      let phases =
        match J.member "phases" metrics with
        | Some (J.List ps) -> ps
        | _ -> []
      in
      let rows =
        List.map
          (fun p ->
            let str key =
              Option.bind (J.member key p) J.to_string_opt
              |> Option.value ~default:"?"
            in
            let ms key = Fmt.str "%.3f" (num_of key p) in
            [
              str "phase"; string_of_int (int_of "count" p); ms "total_ms";
              ms "p50_ms"; ms "p95_ms"; ms "p99_ms";
            ])
          phases
      in
      Table.print
        (Table.make ~title:"Per-phase latency (ms)"
           ~headers:[ "phase"; "count"; "total"; "p50"; "p95"; "p99" ]
           ~aligns:Table.[ Left; Right; Right; Right; Right; Right ]
           rows);
      Fmt.pr "@.requests: %d | cache hit rate: %.1f%% | request p95: %.3f ms@."
        (int_of "total_requests" metrics)
        (100. *. num_of "cache_hit_rate" metrics)
        (num_of "latency_p95_ms" metrics);
      (* Reliability counters (shed, timed out, injected faults, ...)
         ride the same stats response. *)
      (match J.member "counters" metrics with
      | Some (J.Obj ((_ :: _) as counters)) ->
        Fmt.pr "counters: %a@."
          Fmt.(
            list ~sep:(any " | ") (fun ppf (k, v) ->
                pf ppf "%s: %.0f" k
                  (Option.value ~default:0. (J.to_float_opt v))))
          counters
      | _ -> ())
    | _ ->
      Fmt.pr "%s@." response;
      exit 1
  in
  (* metrics_prom wraps the exposition in JSON transport; print the
     decoded body so the output pipes straight into promtool. *)
  let print_metrics_prom response =
    match J.of_string response with
    | Ok r when J.member "ok" r = Some (J.Bool true) ->
      (match
         Option.bind (J.member "result" r) (J.member "body")
         |> Fun.flip Option.bind J.to_string_opt
       with
      | Some prom_body -> print_string prom_body
      | None ->
        Fmt.pr "%s@." response;
        exit 1)
    | _ ->
      Fmt.pr "%s@." response;
      exit 1
  in
  (* With --kind trace --chrome FILE, convert the merged trace result
     into a Chrome trace_event file spanning every process. *)
  let write_chrome file response =
    let fail msg =
      Fmt.epr "skope query: %s@." msg;
      exit 1
    in
    match J.of_string response with
    | Ok r -> (
      match J.member "result" r with
      | Some result -> (
        match Skope_service.Traceview.chrome_of_trace result with
        | Ok text ->
          let oc = open_out file in
          output_string oc text;
          close_out oc;
          Fmt.epr "wrote Chrome trace to %s@." file
        | Error msg -> fail msg)
      | None -> fail "trace response has no result to export")
    | Error msg -> fail msg
  in
  let run host port kind workload machine scale top coverage leanness engine
      axis values axes sample seed overrides timeout_ms body repeat concurrency
      stats retries retry_base_ms retry_max_ms retry_seed connect_timeout_ms
      io_timeout_ms trace_id chrome last errors_only min_ms corpus =
    let kind = if stats then "stats" else kind in
    (* Built lazily: in --corpus mode the flag-derived single body is
       never sent (and may not even be constructible, e.g. no
       --workload). *)
    let body () =
      match body with
      | Some b -> b
      | None ->
        build_body kind workload machine scale top coverage leanness engine
          axis values axes sample seed overrides timeout_ms trace_id last
          errors_only min_ms
    in
    (* A corpus replays every generated skeleton as an inline-source
       request — the server has never seen these workloads, so only
       the source-carrying kinds make sense. *)
    let corpus_bodies =
      match corpus with
      | None -> None
      | Some dir -> (
        let module A = Skope_service.Service_api in
        let request_of_source src =
          match kind with
          | "lint" -> A.lint_source src
          | "audit" -> A.audit_source src
          | other ->
            Fmt.epr
              "--corpus replays inline sources; use --kind lint or audit \
               (got %S)@."
              other;
            exit 2
        in
        match Skope_gen.Corpus.read_manifest ~dir with
        | Error msg ->
          Fmt.epr "skope query: %s@." msg;
          exit 2
        | Ok [] ->
          Fmt.epr "skope query: corpus %s is empty@." dir;
          exit 2
        | Ok cases ->
          let body_of (file, _, _) =
            let path = Filename.concat dir file in
            match In_channel.with_open_bin path In_channel.input_all with
            | src -> A.to_body ?timeout_ms (request_of_source src)
            | exception Sys_error msg ->
              Fmt.epr "skope query: %s@." msg;
              exit 2
          in
          Some (Array.of_list (List.map body_of cases)))
    in
    let module C = Skope_service.Client in
    let timeouts =
      {
        C.connect_s = connect_timeout_ms /. 1e3;
        read_s = io_timeout_ms /. 1e3;
        write_s = io_timeout_ms /. 1e3;
      }
    in
    let retry =
      {
        C.attempts = max 0 retries;
        base_ms = retry_base_ms;
        max_ms = retry_max_ms;
        seed = retry_seed;
      }
    in
    if corpus_bodies = None && repeat <= 1 then
      match C.request ~timeouts ~retry ~host ~port (body ()) with
      | Error e ->
        Fmt.epr "skope query: %a@." C.pp_error e;
        exit 1
      | Ok response when stats -> print_stats response
      | Ok response when kind = "metrics_prom" -> print_metrics_prom response
      | Ok response ->
        Fmt.pr "%s@." response;
        (match J.of_string response with
        | Ok r when J.member "ok" r = Some (J.Bool true) ->
          if kind = "trace" then Option.iter (fun f -> write_chrome f response) chrome
        | _ -> exit 1)
    else begin
      (* Against a cluster router every response names its shard; tally
         latency and retries per shard so affinity (and failover drift,
         and a slow shard) are visible per target. *)
      let shard_stats = Hashtbl.create 8 in
      let shard_lock = Mutex.create () in
      let on_result ~result ~latency_s ~retries =
        match result with
        | Error _ -> ()
        | Ok resp -> (
          match Skope_cluster.Router.shard_of_response resp with
          | None -> ()
          | Some shard ->
            Mutex.lock shard_lock;
            let lats, rets =
              match Hashtbl.find_opt shard_stats shard with
              | Some cell -> cell
              | None ->
                let cell = (ref [], ref 0) in
                Hashtbl.add shard_stats shard cell;
                cell
            in
            lats := latency_s :: !lats;
            rets := !rets + retries;
            Mutex.unlock shard_lock)
      in
      let report =
        match corpus_bodies with
        | Some bodies ->
          (* Default --repeat to one full pass over the corpus. *)
          let repeat = if repeat <= 1 then Array.length bodies else repeat in
          C.load_multi ~timeouts ~retry ~on_result ~host ~port ~repeat
            ~concurrency bodies
        | None ->
          C.load ~timeouts ~retry ~on_result ~host ~port ~repeat ~concurrency
            (body ())
      in
      Fmt.pr "%a@." C.pp_load_report report;
      if Hashtbl.length shard_stats > 0 then begin
        let percentile sorted q =
          let n = Array.length sorted in
          if n = 0 then 0.
          else begin
            let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
            sorted.(min (n - 1) (max 0 (rank - 1)))
          end
        in
        let shards =
          Hashtbl.fold (fun s cell acc -> (s, cell) :: acc) shard_stats []
          |> List.sort compare
        in
        let total =
          List.fold_left
            (fun acc (_, (lats, _)) -> acc + List.length !lats)
            0 shards
        in
        let rows =
          List.map
            (fun (shard, (lats, rets)) ->
              let sorted = Array.of_list !lats in
              Array.sort Float.compare sorted;
              let n = Array.length sorted in
              [
                shard;
                string_of_int n;
                Fmt.str "%.1f%%" (100. *. float_of_int n /. float_of_int total);
                Fmt.str "%.3f" (percentile sorted 0.50 *. 1e3);
                Fmt.str "%.3f" (percentile sorted 0.95 *. 1e3);
                string_of_int !rets;
              ])
            shards
        in
        Table.print
          (Table.make ~title:"Per-shard latency (client-observed, ms)"
             ~headers:[ "shard"; "hits"; "share"; "p50"; "p95"; "retries" ]
             ~aligns:Table.[ Left; Right; Right; Right; Right; Right ]
             rows)
      end;
      if report.C.failures > 0 then exit 1
    end
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Query a running skoped with retries and deadlines; with --repeat N \
          --concurrency K, act as a load generator and report throughput, \
          retry volume and latency percentiles")
    Term.(
      const run $ host_arg $ port_arg $ kind_arg $ workload_arg $ machine_arg
      $ scale_arg $ top_arg $ coverage_arg $ leanness_arg $ engine_opt_arg
      $ axis_arg $ values_arg $ axes_arg $ sample_arg $ seed_arg $ override_arg
      $ timeout_arg $ body_arg $ repeat_arg $ concurrency_arg $ stats_flag
      $ retries_arg $ retry_base_arg $ retry_max_arg $ retry_seed_arg
      $ connect_timeout_arg $ io_timeout_arg $ trace_id_arg $ chrome_arg
      $ last_arg $ errors_only_arg $ min_ms_arg $ corpus_arg)

let cmd_top =
  let module J = Core.Report.Json in
  let module C = Skope_service.Client in
  let module A = Skope_service.Service_api in
  let port_arg =
    let doc = "Server (or router) port." in
    Arg.(value & opt int 7777 & info [ "p"; "port" ] ~docv:"PORT" ~doc)
  in
  let host_arg =
    let doc = "Server address." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)
  in
  let interval_arg =
    let doc = "Refresh interval, milliseconds." in
    Arg.(value & opt float 2000. & info [ "interval-ms" ] ~docv:"MS" ~doc)
  in
  let iterations_arg =
    let doc = "Stop after N frames (0: run until interrupted)." in
    Arg.(value & opt int 0 & info [ "n"; "iterations" ] ~docv:"N" ~doc)
  in
  let recent_arg =
    let doc = "How many recent slow/errored traces to show." in
    Arg.(value & opt int 8 & info [ "recent" ] ~docv:"N" ~doc)
  in
  let min_ms_arg =
    let doc =
      "Slow threshold for the recent-traces pane: show errors plus requests \
       at least this slow (0 shows everything)."
    in
    Arg.(value & opt float 0. & info [ "min-ms" ] ~docv:"MS" ~doc)
  in
  let int_of key json =
    Option.bind (J.member key json) J.to_int_opt |> Option.value ~default:0
  in
  let num_of key json =
    Option.bind (J.member key json) J.to_float_opt |> Option.value ~default:0.
  in
  let str_of key json =
    Option.bind (J.member key json) J.to_string_opt |> Option.value ~default:"?"
  in
  let run host port interval_ms iterations recent_n min_ms =
    let interval_s = Float.max 0.1 (interval_ms /. 1e3) in
    let timeouts =
      { C.connect_s = 2.; read_s = interval_s +. 5.; write_s = 5. }
    in
    (* One fetch per pane per frame; a missing pane (shard down, plain
       skoped without cluster_stats) renders as absent, not an error. *)
    let fetch body =
      match C.request ~timeouts ~retry:C.no_retry ~host ~port body with
      | Error _ -> None
      | Ok resp -> (
        match J.of_string resp with
        | Ok r when J.member "ok" r = Some (J.Bool true) -> J.member "result" r
        | _ -> None)
    in
    let stats_body = A.to_body A.Stats in
    let cluster_body = A.to_body A.Cluster_stats in
    let recent_body =
      A.to_body
        (A.recent ~n:recent_n
           ?min_ms:(if min_ms > 0. then Some min_ms else None)
           ())
    in
    (* QPS needs a delta: remember the last frame's request counters. *)
    let prev_total = ref None in
    let prev_forwarded : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let qps_cell prev now =
      match prev with
      | Some p when now >= p ->
        Fmt.str "%.1f" (float_of_int (now - p) /. interval_s)
      | _ -> "-"
    in
    let render_server stats =
      match stats with
      | None -> Fmt.pr "server: (stats unavailable)@."
      | Some result ->
        let metrics =
          Option.value ~default:(J.Obj []) (J.member "metrics" result)
        in
        let total = int_of "total_requests" metrics in
        Fmt.pr
          "server: %d requests | %s req/s | cache hit %.1f%% | p95 %.3f ms@."
          total
          (qps_cell !prev_total total)
          (100. *. num_of "cache_hit_rate" metrics)
          (num_of "latency_p95_ms" metrics);
        prev_total := Some total;
        (match J.member "counters" metrics with
        | Some (J.Obj ((_ :: _) as counters)) ->
          Fmt.pr "counters: %a@."
            Fmt.(
              list ~sep:(any " | ") (fun ppf (k, v) ->
                  pf ppf "%s: %.0f" k
                    (Option.value ~default:0. (J.to_float_opt v))))
            counters
        | _ -> ())
    in
    let render_cluster cluster =
      match cluster with
      | None -> ()
      | Some result ->
        Fmt.pr "@.cluster: %d/%d shards healthy@." (int_of "healthy" result)
          (int_of "shards" result);
        let members =
          match J.member "members" result with
          | Some (J.List ms) -> ms
          | _ -> []
        in
        let rows =
          List.map
            (fun m ->
              let id = str_of "id" m in
              let fwd = int_of "forwarded" m in
              let qps = qps_cell (Hashtbl.find_opt prev_forwarded id) fwd in
              Hashtbl.replace prev_forwarded id fwd;
              (* Per-shard hit rate and p95 come from the shard's own
                 stats, forwarded inside the cluster_stats answer. *)
              let hit, p95 =
                match
                  Option.bind (J.member "stats" m) (J.member "metrics")
                with
                | Some sm ->
                  ( Fmt.str "%.1f%%" (100. *. num_of "cache_hit_rate" sm),
                    Fmt.str "%.3f" (num_of "latency_p95_ms" sm) )
                | None -> ("-", "-")
              in
              [
                id; str_of "state" m; string_of_int (int_of "in_flight" m);
                string_of_int fwd; qps; hit; p95;
                string_of_int (int_of "failovers" m);
                string_of_int (int_of "errors" m);
              ])
            members
        in
        Table.print
          (Table.make ~title:""
             ~headers:
               [
                 "shard"; "state"; "inflight"; "fwd"; "qps"; "hit"; "p95 ms";
                 "failover"; "errors";
               ]
             ~aligns:
               Table.
                 [
                   Left; Left; Right; Right; Right; Right; Right; Right; Right;
                 ]
             rows)
    in
    let render_recent recent =
      match recent with
      | None -> ()
      | Some result ->
        let records =
          match J.member "records" result with
          | Some (J.List rs) -> rs
          | _ -> []
        in
        Fmt.pr "@.recent (%d of last %d):@." (List.length records)
          (int_of "capacity" result);
        let rows =
          List.map
            (fun r ->
              [
                str_of "trace_id" r; str_of "kind" r; str_of "outcome" r;
                Fmt.str "%.3f" (num_of "duration_ms" r);
                (match J.member "shard" r with
                | Some (J.String s) -> s
                | _ -> "-");
                string_of_int (int_of "retries" r);
              ])
            records
        in
        Table.print
          (Table.make ~title:""
             ~headers:
               [ "trace_id"; "kind"; "outcome"; "ms"; "shard"; "retries" ]
             ~aligns:Table.[ Left; Left; Left; Right; Left; Right ]
             rows)
    in
    let rec loop frame =
      (* Clear from the second frame on: single-shot output (smoke, CI)
         stays pipeable, a live session repaints in place. *)
      if frame > 1 then Fmt.pr "\027[2J\027[H";
      let stats = fetch stats_body in
      let cluster = fetch cluster_body in
      let recent = fetch recent_body in
      Fmt.pr "skope top — %s:%d — frame %d@." host port frame;
      (match (stats, cluster, recent) with
      | None, None, None ->
        Fmt.epr "skope top: no response from %s:%d@." host port;
        exit 1
      | _ -> ());
      render_server stats;
      render_cluster cluster;
      render_recent recent;
      Fmt.pr "@?";
      if iterations = 0 || frame < iterations then begin
        Thread.delay interval_s;
        loop (frame + 1)
      end
    in
    loop 1
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a running skoped or cluster router: polls \
          stats, cluster_stats and the flight recorder to show per-shard \
          QPS, hit rate, p95, health state and the last slow/errored traces")
    Term.(
      const run $ host_arg $ port_arg $ interval_arg $ iterations_arg
      $ recent_arg $ min_ms_arg)

(* --- gen + fuzz ------------------------------------------------------ *)

module G = Skope_gen.Gen
module GA = Skope_gen.Archetype
module GC = Skope_gen.Corpus
module GF = Skope_gen.Fuzzcheck

let gen_seed_arg =
  let doc = "Generator master seed (SplitMix64); same seed, same corpus." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc)

let gen_count_arg default =
  let doc = "Number of skeletons to generate." in
  Arg.(value & opt int default & info [ "n"; "count" ] ~docv:"N" ~doc)

let gen_jobs_arg =
  let doc =
    "Worker domains.  Output is byte-identical for every value: each case \
     derives its own stream from (seed, index)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"K" ~doc)

let archetype_conv =
  Arg.conv
    ( (fun s ->
        match GA.of_string s with Ok a -> Ok a | Error e -> Error (`Msg e)),
      fun ppf a -> Fmt.string ppf (GA.to_string a) )

let gen_archetype_arg =
  let doc =
    "Force one archetype (compute, memory, branchy, comm) instead of \
     drawing from --mix.  Note the forced stream differs from a mixed \
     corpus that happened to draw the same archetype."
  in
  Arg.(
    value & opt (some archetype_conv) None & info [ "archetype" ] ~docv:"NAME" ~doc)

let range_conv what =
  Arg.conv
    ( (fun s ->
        let bad () = Error (`Msg (what ^ ": expected LO:HI integers, LO <= HI")) in
        match String.split_on_char ':' s with
        | [ lo; hi ] -> (
          match (int_of_string_opt lo, int_of_string_opt hi) with
          | Some lo, Some hi when lo <= hi -> Ok (lo, hi)
          | _ -> bad ())
        | _ -> bad ()),
      fun ppf (lo, hi) -> Fmt.pf ppf "%d:%d" lo hi )

let mix_conv =
  Arg.conv
    ( (fun s ->
        match GA.mix_of_string s with Ok m -> Ok m | Error e -> Error (`Msg e)),
      GA.pp_mix )

let gen_config_term =
  let d = G.default in
  let depth_arg =
    let doc = "Max loop/branch nesting below a function body." in
    Arg.(value & opt int d.G.depth & info [ "depth" ] ~docv:"D" ~doc)
  in
  let stmts_arg =
    let doc = "Max statements drawn per block." in
    Arg.(value & opt int d.G.max_stmts & info [ "stmts" ] ~docv:"N" ~doc)
  in
  let funcs_arg =
    let doc = "Max helper functions per program." in
    Arg.(value & opt int d.G.funcs & info [ "funcs" ] ~docv:"N" ~doc)
  in
  let ranks_arg =
    let doc = "Max rank count for comm skeletons (rounded up to even)." in
    Arg.(value & opt int d.G.ranks & info [ "ranks" ] ~docv:"P" ~doc)
  in
  let trips_arg =
    let doc = "Literal loop-trip range." in
    Arg.(
      value
      & opt (range_conv "--trips") (d.G.trip_lo, d.G.trip_hi)
      & info [ "trips" ] ~docv:"LO:HI" ~doc)
  in
  let sizes_arg =
    let doc = "Range of the $(b,n) input (array extents)." in
    Arg.(
      value
      & opt (range_conv "--sizes") (d.G.size_lo, d.G.size_hi)
      & info [ "sizes" ] ~docv:"LO:HI" ~doc)
  in
  let mix_arg =
    let doc =
      "Archetype weights for mixed corpora, e.g. \
       $(b,compute=4,memory=3,branchy=2,comm=1)."
    in
    Arg.(value & opt mix_conv d.G.mix & info [ "mix" ] ~docv:"A=W,.." ~doc)
  in
  let make depth max_stmts funcs ranks (trip_lo, trip_hi) (size_lo, size_hi)
      mix =
    G.clamp
      { d with G.depth; max_stmts; funcs; ranks; trip_lo; trip_hi; size_lo;
        size_hi; mix }
  in
  Term.(
    const make $ depth_arg $ stmts_arg $ funcs_arg $ ranks_arg $ trips_arg
    $ sizes_arg $ mix_arg)

let cmd_gen =
  let out_arg =
    let doc =
      "Write skeletons plus a corpus.json manifest into this directory \
       (created when missing); without it, sources print to stdout."
    in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"DIR" ~doc)
  in
  let run config archetype seed count jobs out =
    if count <= 0 then begin
      Fmt.epr "skope gen: --count must be positive@.";
      exit 2
    end;
    let cases = GC.generate ~config ?archetype ~jobs ~seed ~count () in
    match out with
    | None ->
      List.iter (fun c -> print_string (G.to_source c)) cases
    | Some dir ->
      let files = GC.write ?archetype ~config ~seed ~dir cases in
      let per_arch =
        List.map
          (fun a ->
            ( a,
              List.length
                (List.filter (fun c -> c.G.archetype = a) cases) ))
          GA.all
        |> List.filter (fun (_, n) -> n > 0)
      in
      Fmt.pr "wrote %d skeletons + corpus.json to %s (%s)@."
        (List.length files) dir
        (String.concat ", "
           (List.map
              (fun (a, n) -> Fmt.str "%s %d" (GA.to_string a) n)
              per_arch))
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate seeded random skeleton workloads (compute, memory, \
          branchy, comm archetypes); deterministic per (seed, index, \
          config)")
    Term.(
      const run $ gen_config_term $ gen_archetype_arg $ gen_seed_arg
      $ gen_count_arg 10 $ gen_jobs_arg $ out_arg)

let cmd_fuzz =
  let index_arg =
    let doc =
      "Re-run exactly one case by corpus index (the reproducer form \
       printed on failure) and show its source plus gate verdicts."
    in
    Arg.(value & opt (some int) None & info [ "index" ] ~docv:"I" ~doc)
  in
  let sim_bound_arg =
    let doc =
      "Allowed analyze/sim total-time ratio (either direction) for the \
       sanity gate."
    in
    Arg.(value & opt float 1e4 & info [ "sim-bound" ] ~docv:"R" ~doc)
  in
  let json_flag =
    let doc = "Emit the fuzz report as JSON." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let print_failure f =
    Fmt.pr "FAIL case %d (%s) [%s]: %s@.  repro: %s@." f.GF.index
      (GA.to_string f.GF.archetype)
      (GF.gate_name f.GF.gate)
      f.GF.detail f.GF.repro
  in
  let run config archetype seed count jobs sim_bound index json =
    match index with
    | Some index ->
      let case = G.generate ~config ?archetype ~seed ~index () in
      let repro = GF.repro_command ~config ?archetype ~seed ~index () in
      let fails = GF.check_case ~sim_bound ~repro case in
      Fmt.pr "# case %d: %s (%s), inputs %s@." index case.G.name
        (GA.to_string case.G.archetype)
        (String.concat ", "
           (List.map
              (fun (k, v) -> Fmt.str "%s=%s" k (Core.Bet.Value.to_string v))
              case.G.inputs));
      print_string (Core.Skeleton.Pretty.to_string case.G.program);
      if fails = [] then Fmt.pr "all %d gates pass@." GF.n_gates
      else begin
        List.iter print_failure fails;
        exit 1
      end
    | None ->
      if count <= 0 then begin
        Fmt.epr "skope fuzz: --count must be positive@.";
        exit 2
      end;
      let report = GF.run ~config ?archetype ~jobs ~sim_bound ~seed ~count () in
      let failed = report.GF.failures <> [] in
      if json then
        print_endline
          (Core.Report.Json.to_string (GF.report_json ~seed report))
      else begin
        Fmt.pr "fuzz: %d cases x %d gates, seed %Ld (%s)@." report.GF.total
          report.GF.gates_per_case seed
          (String.concat ", "
             (List.map
                (fun (a, n) -> Fmt.str "%s %d" (GA.to_string a) n)
                report.GF.by_archetype));
        match report.GF.failures with
        | [] -> Fmt.pr "all gates pass@."
        | fs ->
          List.iter print_failure fs;
          Fmt.pr "%d gate failure(s) across %d case(s)@." (List.length fs)
            (List.length
               (List.sort_uniq compare (List.map (fun f -> f.GF.index) fs)))
      end;
      if failed then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate seeded skeletons and gate each on \
          pretty/parse round-trip, lint and audit health, tree vs arena \
          engine bit-parity, and analyze-vs-simulate sanity bounds; \
          failures print a one-line reproducer")
    Term.(
      const run $ gen_config_term $ gen_archetype_arg $ gen_seed_arg
      $ gen_count_arg 100 $ gen_jobs_arg $ sim_bound_arg $ index_arg
      $ json_flag)

let cmd_json_check =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    match Core.Report.Json.of_string (read_source file) with
    | Ok _ -> Fmt.pr "%s: valid JSON@." file
    | Error msg ->
      Fmt.epr "%s: %s@." file msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "json-check"
       ~doc:
         "Validate that a file is well-formed JSON (e.g. an exported \
          --trace file)")
    Term.(const run $ file)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "skope" ~version:Core.Version.describe
      ~doc:"Analytic application-execution modeling for co-design"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            cmd_workloads; cmd_machines; cmd_show; cmd_parse; cmd_lint;
            cmd_audit;
            cmd_analyze; cmd_validate; cmd_hints; cmd_miniapp; cmd_sweep;
            cmd_explore;
            cmd_nodes; cmd_roofline; cmd_json; cmd_import; cmd_spots;
            cmd_path; cmd_compare; cmd_gen; cmd_fuzz; cmd_serve; cmd_route;
            cmd_query; cmd_top; cmd_json_check;
          ]))
