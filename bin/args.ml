(** Shared command-line vocabulary for skope subcommands.

    analyze, sweep, lint, explore and query all accept the same core
    flags; defining them once keeps names, defaults and docstrings
    from drifting apart. *)

open Cmdliner
module Span = Core.Telemetry.Span
module Chrome = Core.Telemetry.Chrome
module Designspace = Core.Hw.Designspace

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON trace of this run to $(docv) (load it \
     in chrome://tracing or Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Collect spans for the duration of [f] and write them out.  The root
   span is named after the subcommand so nested phase spans have a
   common ancestor in the trace view. *)
let with_trace trace ~root f =
  match trace with
  | None -> f ()
  | Some file ->
    let collector = Chrome.create () in
    let sink = Chrome.sink collector in
    Span.add_sink sink;
    Fun.protect
      ~finally:(fun () ->
        Span.remove_sink sink;
        Chrome.write_file collector file;
        Fmt.epr "wrote %d spans to %s@." (Chrome.length collector) file)
      (fun () -> Span.with_ ~name:root f)

let machine_arg =
  let doc = "Target machine (bgq, xeon, future)." in
  Arg.(value & opt string "bgq" & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc)

let workload_arg =
  let doc = "Workload name (see `skope workloads')." in
  Arg.(value & opt string "sord" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let scale_arg =
  let doc = "Input scale factor (defaults to the workload's default)." in
  Arg.(value & opt (some float) None & info [ "s"; "scale" ] ~docv:"S" ~doc)

let top_arg =
  let doc = "Number of hot spots to display." in
  Arg.(value & opt int 10 & info [ "k"; "top" ] ~docv:"K" ~doc)

let coverage_arg =
  let doc = "Time-coverage criterion for hot spot selection." in
  Arg.(value & opt float 0.90 & info [ "coverage" ] ~docv:"FRAC" ~doc)

let leanness_arg =
  let doc = "Code-leanness criterion for hot spot selection." in
  Arg.(value & opt float 0.10 & info [ "leanness" ] ~docv:"FRAC" ~doc)

let format_arg =
  let doc = "Output format." in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"text|json" ~doc)

(** Like {!format_arg} plus streaming [ndjson] (one JSON object per
    line, emitted as results complete). *)
let format_stream_arg =
  let doc = "Output format; ndjson streams one point per line." in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("ndjson", `Ndjson) ]) `Text
    & info [ "format" ] ~docv:"text|json|ndjson" ~doc)

let lookup_workload name =
  match Core.Workloads.Registry.find name with
  | Some w -> w
  | None ->
    Fmt.epr "unknown workload %S; try `skope workloads'@." name;
    exit 2

let lookup_machine name =
  match Core.Hw.Machines.find name with
  | Some m -> m
  | None ->
    Fmt.epr "unknown machine %S; try `skope machines'@." name;
    exit 2

let parse_inputs specs =
  List.map
    (fun spec ->
      match String.index_opt spec '=' with
      | Some i ->
        let name = String.sub spec 0 i in
        let v = String.sub spec (i + 1) (String.length spec - i - 1) in
        (match int_of_string_opt v with
        | Some n -> (name, Core.Bet.Value.int n)
        | None -> (
          match float_of_string_opt v with
          | Some f -> (name, Core.Bet.Value.float f)
          | None ->
            Fmt.epr "invalid input %S (expected NAME=NUMBER)@." spec;
            exit 2))
      | None ->
        Fmt.epr "invalid input %S (expected NAME=NUMBER)@." spec;
        exit 2)
    specs

let parse_values s =
  String.split_on_char ',' s |> List.filter_map float_of_string_opt

(** Build one design axis from a short key and comma-separated values
    (the sweep form: [--axis bw --values 1,2,4]). *)
let axis_of_parts key values =
  let values = parse_values values in
  if values = [] then begin
    Fmt.epr "no numeric values for axis %S@." key;
    exit 2
  end;
  match Designspace.axis_of_key key values with
  | Ok axis -> axis
  | Error msg ->
    Fmt.epr "%s@." msg;
    exit 2

(** Parse one [KEY=V1,V2,...] axis spec (the explore form:
    repeatable [--axis bw=25,50,100]). *)
let parse_axis_spec spec =
  match String.index_opt spec '=' with
  | Some i ->
    let key = String.sub spec 0 i in
    let values = String.sub spec (i + 1) (String.length spec - i - 1) in
    axis_of_parts key values
  | None ->
    Fmt.epr "invalid axis %S (expected KEY=V1,V2,...)@." spec;
    exit 2

(** [--engine tree|arena] selects the BET pricing engine.  The two
    are bit-for-bit identical on results; arena re-prices a flattened
    BET incrementally, which is what grid exploration wants. *)
let engine_arg =
  let doc =
    "BET pricing engine: `tree' walks the BET per point, `arena' \
     re-prices a flattened arena incrementally (identical results)."
  in
  Arg.(
    value
    & opt
        (enum [ ("tree", Core.Pipeline.Tree); ("arena", Core.Pipeline.Arena) ])
        Core.Pipeline.Tree
    & info [ "engine" ] ~docv:"tree|arena" ~doc)

(** [--engine] as an optional wire name, for [skope query] bodies
    (absent: the server decides). *)
let engine_opt_arg =
  let doc =
    "BET pricing engine the server should use: tree or arena (default: \
     the server's default)."
  in
  Arg.(
    value
    & opt (some (enum [ ("tree", "tree"); ("arena", "arena") ])) None
    & info [ "engine" ] ~docv:"tree|arena" ~doc)

(** Repeatable [--axis KEY=V1,V2,...] for multi-axis grids. *)
let axes_arg =
  let doc =
    "Design axis as KEY=V1,V2,... where KEY is one of bw, lat, vec, issue, \
     freq, l2, div (repeatable; the grid is their cartesian product)."
  in
  Arg.(value & opt_all string [] & info [ "axis" ] ~docv:"KEY=V1,V2,.." ~doc)

(* --- rule gating (lint + audit) ------------------------------------- *)

(** The diagnostic-gating flags are shared verbatim between [skope
    lint] and [skope audit]; one definition keeps their names,
    semantics and exit codes identical. *)

let deny_arg =
  let doc = "Fail on this class of findings; only `warnings' is recognized." in
  Arg.(value & opt_all string [] & info [ "deny" ] ~docv:"WHAT" ~doc)

let disable_arg =
  let doc = "Disable a rule by code, e.g. L008 or A003 (repeatable)." in
  Arg.(value & opt_all string [] & info [ "disable" ] ~docv:"CODE" ~doc)

let only_arg =
  let doc = "Enable only these rule codes (repeatable)." in
  Arg.(value & opt_all string [] & info [ "only" ] ~docv:"CODE" ~doc)

let rules_flag =
  let doc = "List the rules and exit." in
  Arg.(value & flag & info [ "rules" ] ~doc)

(** Validate the repeatable [--deny] values (only ["warnings"] is
    recognized; anything else exits 2) and fold them to a flag. *)
let deny_warnings_of deny =
  List.iter
    (fun d ->
      if d <> "warnings" then begin
        Fmt.epr "unknown --deny %S (only `warnings' is recognized)@." d;
        exit 2
      end)
    deny;
  List.mem "warnings" deny

(** Resolve [--disable]/[--only] against a rule registry: [--only]
    disables the complement of the named codes. *)
let resolve_disabled ~rules ~disable ~only =
  if only = [] then disable
  else
    disable
    @ (rules
      |> List.filter (fun (c, _) -> not (List.mem c only))
      |> List.map fst)

(** Print a rule registry as aligned [CODE  summary] lines. *)
let print_rules rules = List.iter (fun (c, d) -> Fmt.pr "%s  %s@." c d) rules
