/* CSR sparse matrix-vector product: exercises the frontend's
 * indirection handling — the column index loaded from memory cannot
 * be tracked statically, so its use as a subscript becomes a
 * pseudo-random surrogate access (and the row-length loop falls back
 * to profiled trip counts).
 */

param int nrows;
param int nnz;

double val[nnz];
int colidx[nnz];
int rowptr[nrows];
double x[nrows];
double y[nrows];

void main() {
  for (int i = 0; i < nrows; i++) {
    double sum;
    sum = 0.0;
    int start;
    int stop;
    start = rowptr[i];
    stop = rowptr[i];
    for (int k = start; k < stop; k++) {
      int c;
      c = colidx[k];
      sum = sum + val[k] * x[c];
    }
    y[i] = sum;
  }
}
