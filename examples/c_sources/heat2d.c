/* 2D Jacobi heat diffusion with a convergence loop: input to the
 * mini-C frontend (the paper's source-to-source analysis engine).
 *
 *   skope import examples/c_sources/heat2d.c
 *   skope analyze -f <generated.skope> -i n=512 -m bgq
 */

param int n;
param int maxiter;

double t_old[n][n];
double t_new[n][n];
double resid[n];

void sweep() {
  for (int i = 1; i < n - 1; i++) {
    for (int j = 1; j < n - 1; j++) {
      t_new[i][j] = 0.25 * (t_old[i + 1][j] + t_old[i - 1][j]
                            + t_old[i][j + 1] + t_old[i][j - 1]);
    }
  }
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      t_old[i][j] = t_new[i][j];
    }
  }
}

void residual() {
  double acc;
  acc = 0.0;
  for (int i = 1; i < n - 1; i++) {
    double rowsum;
    rowsum = 0.0;
    for (int j = 1; j < n - 1; j++) {
      rowsum = rowsum + (t_new[i][j] - t_old[i][j]) * (t_new[i][j] - t_old[i][j]);
    }
    resid[i] = rowsum;
  }
}

void main() {
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      t_old[i][j] = 0.0;
    }
  }
  int it;
  it = 0;
  double err;
  err = 1.0;
  while (err > 0.0001) {
    sweep();
    residual();
    err = err * 0.9;  /* data-dependent in reality; the profiler learns it */
    it = it + 1;
    if (it >= maxiter) {
      break;
    }
  }
}
