#!/usr/bin/env bash
# Cluster smoke: boot a router over 3 independent skoped shards on
# ephemeral ports and gate on the three cluster invariants:
#   1. the router reports all shards healthy in cluster_stats;
#   2. a repeated query sticks to one shard and is a cache hit there —
#      and on no other shard (disjoint caches);
#   3. after SIGKILL of the owning shard, queries keep succeeding via
#      failover, the router never crashes, and the dead shard is
#      ejected by the health probes.
set -euo pipefail

cd "$(dirname "$0")/.."

fail() { echo "cluster_smoke: FAIL: $*" >&2; exit 1; }

PIDS=()
TEMP_FILES=()

cleanup() {
    local pid
    for pid in ${PIDS[@]+"${PIDS[@]}"}; do
        kill -INT "$pid" 2>/dev/null || true
    done
    for pid in ${PIDS[@]+"${PIDS[@]}"}; do
        for _ in $(seq 1 50); do
            kill -0 "$pid" 2>/dev/null || break
            sleep 0.1
        done
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -f ${TEMP_FILES[@]+"${TEMP_FILES[@]}"}
}
trap cleanup EXIT

mktmp() {
    local f
    f=$(mktemp "/tmp/skoped-cluster.XXXXXX$1")
    TEMP_FILES+=("$f")
    echo "$f"
}

echo "cluster_smoke: building..."
dune build bin || fail "dune build"

SKOPE=_build/default/bin/skope.exe

# wait_listening LOG PID: block until LOG contains the listening line,
# then echo the bound port.
wait_listening() {
    local log=$1 pid=$2
    for _ in $(seq 1 50); do
        grep -q "listening" "$log" 2>/dev/null && break
        kill -0 "$pid" 2>/dev/null || { cat "$log" >&2; return 1; }
        sleep 0.1
    done
    sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' "$log" | head -n 1
}

# --- boot 3 shards + the router ---------------------------------------

SHARD_PIDS=()
SHARD_PORTS=()
for i in 0 1 2; do
    LOG=$(mktmp .shard$i.log)
    "$SKOPE" serve --port 0 --pool 2 --queue 32 >"$LOG" 2>&1 &
    PID=$!
    PIDS+=("$PID")
    SHARD_PIDS+=("$PID")
    PORT=$(wait_listening "$LOG" "$PID") || fail "shard s$i never came up"
    [ -n "$PORT" ] || fail "shard s$i printed no port"
    SHARD_PORTS+=("$PORT")
    echo "cluster_smoke: shard s$i on port $PORT (pid $PID)"
done

ROUTER_LOG=$(mktmp .router.log)
"$SKOPE" route --port 0 --probe-interval-ms 200 --fall 2 \
    --shard "127.0.0.1:${SHARD_PORTS[0]}" \
    --shard "127.0.0.1:${SHARD_PORTS[1]}" \
    --shard "127.0.0.1:${SHARD_PORTS[2]}" >"$ROUTER_LOG" 2>&1 &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
ROUTER_PORT=$(wait_listening "$ROUTER_LOG" "$ROUTER_PID") \
    || fail "router never came up"
[ -n "$ROUTER_PORT" ] || fail "router printed no port"
echo "cluster_smoke: router on port $ROUTER_PORT (pid $ROUTER_PID)"

q() { "$SKOPE" query --port "$ROUTER_PORT" "$@"; }

# --- gate 1: all shards healthy ---------------------------------------

echo "cluster_smoke: gate 1: all shards healthy"
STATS=$(q --kind cluster_stats) || fail "cluster_stats request"
echo "$STATS" | grep -q '"shards":3'  || fail "cluster_stats missing 3 shards"
echo "$STATS" | grep -q '"healthy":3' || fail "not all shards healthy"

# --- gate 2: repeat query is a cache hit on exactly one shard ---------

echo "cluster_smoke: gate 2: affinity + disjoint caches"
R1=$(q -w sord -m bgq) || fail "analyze via router"
OWNER=$(echo "$R1" | grep -o '"shard":"[^"]*"' | sed 's/.*:"\(.*\)"/\1/')
[ -n "$OWNER" ] || fail "response carries no shard field"
R2=$(q -w sord -m bgq) || fail "repeat analyze via router"
OWNER2=$(echo "$R2" | grep -o '"shard":"[^"]*"' | sed 's/.*:"\(.*\)"/\1/')
[ "$OWNER" = "$OWNER2" ] || fail "repeat went to $OWNER2, first to $OWNER"
echo "cluster_smoke: fingerprint owned by $OWNER"

# Ask each shard directly: the owner must have the hit, the others a
# cold cache — the caches are disjoint.
HOT=0
for i in 0 1 2; do
    HITS=$("$SKOPE" query --port "${SHARD_PORTS[$i]}" --kind stats \
        | grep -o '"cache_hits":[0-9]*' | head -n 1 | cut -d: -f2)
    if [ "${HITS:-0}" -gt 0 ]; then
        HOT=$((HOT + 1))
        [ "s$i" = "$OWNER" ] || fail "cache hit on s$i but owner is $OWNER"
    fi
done
[ "$HOT" -eq 1 ] || fail "expected a cache hit on exactly 1 shard, got $HOT"

# Concurrent repeat traffic through the router must come back clean
# and report the per-shard latency/retries table (the loadgen's
# scaling lens).
echo "cluster_smoke: load burst through the router"
LOAD=$(q -w sord -m bgq --repeat 100 --concurrency 4) \
    || fail "load burst via router"
echo "$LOAD"
echo "$LOAD" | grep -q '(0 failed' || fail "load burst reported failures"
echo "$LOAD" | grep -q 'Per-shard latency' \
    || fail "load burst missing per-shard latency table"
echo "$LOAD" | grep -q 'retries' || fail "load burst missing retries column"

# --- gate 2b: one trace id spans the router and the owning shard ------

echo "cluster_smoke: gate 2b: trace id propagates router -> shard"
RT=$(q -w sord -m bgq --trace-id cluster-trace-1) || fail "traced analyze"
echo "$RT" | grep -q '"trace_id":"cluster-trace-1"' \
    || fail "router response does not echo the caller's trace id"
TOWNER=$(echo "$RT" | grep -o '"shard":"[^"]*"' | sed 's/.*:"\(.*\)"/\1/')
[ -n "$TOWNER" ] || fail "traced response carries no shard field"

CHROME=$(mktmp .chrome.json)
TRACED=$(q --kind trace --trace-id cluster-trace-1 --chrome "$CHROME" \
    2>/dev/null) || fail "trace lookup via router"
echo "$TRACED" | grep -q '"router"' \
    || fail "merged trace missing the router's spans"
echo "$TRACED" | grep -q "\"$TOWNER\"" \
    || fail "merged trace missing the owning shard's spans"
"$SKOPE" json-check "$CHROME" >/dev/null \
    || fail "merged Chrome trace is not valid JSON"
grep -q '"ph":"X"' "$CHROME" || fail "Chrome trace has no complete events"
grep -q "\"name\":\"$TOWNER\"" "$CHROME" \
    || fail "Chrome trace missing the shard process"
grep -q '"name":"router"' "$CHROME" \
    || fail "Chrome trace missing the router process"

# The owning shard's own flight recorder must hold the same id.
OWNER_PORT=${SHARD_PORTS[${TOWNER#s}]}
RECENT=$("$SKOPE" query --port "$OWNER_PORT" --kind recent --last 50) \
    || fail "recent on owning shard"
echo "$RECENT" | grep -q '"trace_id":"cluster-trace-1"' \
    || fail "owning shard's recent missing the propagated trace id"

# A single dashboard frame against the router must render all three
# panes and exit cleanly (single-shot mode never clears the screen, so
# it stays pipeable).
echo "cluster_smoke: single-shot skope top frame"
TOP=$("$SKOPE" top --port "$ROUTER_PORT" -n 1) || fail "skope top frame"
echo "$TOP" | grep -q 'shards healthy' || fail "top frame missing cluster pane"
echo "$TOP" | grep -q 'cluster-trace-1' \
    || fail "top frame missing the traced request in its recent pane"

# --- gate 3: SIGKILL the owner; failover keeps answering --------------

echo "cluster_smoke: gate 3: SIGKILL $OWNER, expect failover"
OWNER_IDX=${OWNER#s}
kill -9 "${SHARD_PIDS[$OWNER_IDX]}" || fail "could not kill $OWNER"

# The very next requests must succeed via the ring successor, without
# client retries — the router's failover is what is under test.
for _ in 1 2 3; do
    R3=$(q -w sord -m bgq --retries 0) || fail "query after shard kill"
    SURVIVOR=$(echo "$R3" | grep -o '"shard":"[^"]*"' | sed 's/.*:"\(.*\)"/\1/')
    [ -n "$SURVIVOR" ] && [ "$SURVIVOR" != "$OWNER" ] \
        || fail "request still answered by dead shard $OWNER"
done
echo "cluster_smoke: failover to $SURVIVOR"

kill -0 "$ROUTER_PID" 2>/dev/null || fail "router crashed after shard kill"

# Probes (200 ms interval, fall 2) must eject the dead member.
EJECTED=0
for _ in $(seq 1 50); do
    STATS=$(q --kind cluster_stats) || fail "cluster_stats after kill"
    if echo "$STATS" | grep -q '"healthy":2'; then
        EJECTED=1
        break
    fi
    sleep 0.2
done
[ "$EJECTED" -eq 1 ] || fail "dead shard never left the healthy count"
echo "$STATS" | grep -q "\"id\":\"$OWNER\",[^{]*\"state\":\"ejected\"" \
    || fail "dead shard not marked ejected"

# Post-ejection steady state: still answering, router still alive.
q -w sord -m bgq --retries 0 >/dev/null || fail "query after ejection"
q --kind capabilities | grep -q '"cluster"' \
    || fail "capabilities missing cluster topology"
kill -0 "$ROUTER_PID" 2>/dev/null || fail "router crashed after ejection"

echo "cluster_smoke: OK"
