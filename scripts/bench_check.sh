#!/usr/bin/env bash
# Compare a fresh `skope bench --quick --json` run against the
# committed baseline and flag metrics that drifted beyond a tolerance.
#
#   scripts/bench_check.sh [BASELINE] [CURRENT]
#
# defaults: BASELINE=BENCH.json, CURRENT=bench-quick.json.  TOL is the
# allowed drift in percent (default 25; override via the environment).
# A markdown delta table goes to $GITHUB_STEP_SUMMARY when set (and
# always to stdout).  Exit status 1 when any metric drifts beyond TOL
# — callers decide whether that blocks (CI runs this warn-only:
# timing on shared runners is too noisy to gate merges on).
#
# No jq dependency: both files are the flat one-line
# {"metrics":{"name":number,...}} shape skope emits, parsed with awk.
set -euo pipefail

BASELINE=${1:-BENCH.json}
CURRENT=${2:-bench-quick.json}
TOL=${TOL:-25}

for f in "$BASELINE" "$CURRENT"; do
  if [ ! -f "$f" ]; then
    echo "bench_check: missing $f" >&2
    exit 2
  fi
done

# Emit "name value" per numeric metric inside the "metrics" object.
extract_metrics() {
  awk '
    match($0, /"metrics":[ \t]*\{[^}]*\}/) {
      s = substr($0, RSTART, RLENGTH)
      sub(/^"metrics":[ \t]*\{/, "", s)
      sub(/\}$/, "", s)
      n = split(s, kv, ",")
      for (i = 1; i <= n; i++) {
        if (split(kv[i], p, ":") != 2) continue
        key = p[1]; gsub(/[" \t]/, "", key)
        val = p[2]; gsub(/[ \t]/, "", val)
        if (val ~ /^-?[0-9][0-9.eE+-]*$/) print key, val
      }
    }' "$1"
}

base_tmp=$(mktemp) && cur_tmp=$(mktemp)
trap 'rm -f "$base_tmp" "$cur_tmp"' EXIT
extract_metrics "$BASELINE" > "$base_tmp"
extract_metrics "$CURRENT" > "$cur_tmp"

# elapsed_s measures the benchmark harness itself, not the code under
# test — always informational.
report=$(awk -v tol="$TOL" '
  NR == FNR { base[$1] = $2; next }
  {
    cur[$1] = $2
    if (!($1 in base)) { new_metrics = new_metrics " " $1; next }
    b = base[$1] + 0; c = $2 + 0
    delta = (b == 0) ? 0 : (c - b) * 100.0 / b
    mark = "ok"
    if ($1 != "elapsed_s" && (delta > tol || delta < -tol)) {
      mark = "DRIFT"
      bad++
    }
    printf "| %s | %.4g | %.4g | %+.1f%% | %s |\n", $1, b, c, delta, mark
  }
  END {
    for (k in base) if (!(k in cur)) missing = missing " " k
    if (new_metrics != "") printf "| _new:%s_ | - | - | - | note |\n", new_metrics
    if (missing != "") { printf "| _missing:%s_ | - | - | - | DRIFT |\n", missing; bad++ }
    exit (bad > 0) ? 1 : 0
  }' "$base_tmp" "$cur_tmp") && status=0 || status=$?

{
  echo "### Bench regression check (tolerance ±${TOL}%)"
  echo ""
  echo "| metric | baseline | current | delta | status |"
  echo "| --- | ---: | ---: | ---: | --- |"
  echo "$report"
  echo ""
  if [ "$status" -ne 0 ]; then
    echo "**Some metrics drifted beyond ±${TOL}%** (warn-only; shared-runner timing is noisy)."
  else
    echo "All metrics within ±${TOL}% of the committed baseline."
  fi
} | tee -a "${GITHUB_STEP_SUMMARY:-/dev/null}"

exit "$status"
