#!/usr/bin/env bash
# Turn a failed `skope fuzz` run into an uploadable artifact: for each
# `repro: skope fuzz --seed S --index I ...` line in the captured
# output, re-run the reproducer to dump that case's source and gate
# verdicts.
#
#   scripts/fuzz_artifacts.sh FUZZ_OUTPUT OUT_DIR
set -euo pipefail

OUT=${1:-fuzz-out.txt}
DIR=${2:-fuzz-failures}

if [ ! -f "$OUT" ]; then
  echo "fuzz_artifacts: missing $OUT" >&2
  exit 2
fi

mkdir -p "$DIR"
cp "$OUT" "$DIR/fuzz-output.txt"

n=0
# Reproducer flags are machine-generated (seed/index/config numbers
# and archetype names only), safe to splice back into a command line.
grep -oE 'repro: skope fuzz .*' "$OUT" | sed 's/^repro: skope //' | sort -u |
  while read -r args; do
    idx=$(printf '%s\n' "$args" | grep -oE -- '--index [0-9]+' | awk '{print $2}')
    # shellcheck disable=SC2086  # args is a flat flag list by construction
    dune exec bin/skope.exe -- $args > "$DIR/case-${idx:-$n}.txt" 2>&1 || true
    n=$((n + 1))
  done

count=$(find "$DIR" -name 'case-*.txt' | wc -l)
echo "fuzz_artifacts: wrote $count failing case dump(s) to $DIR"
