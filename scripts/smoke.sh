#!/usr/bin/env bash
# Pre-PR smoke check for the skoped service layer: build, start the
# server on a random port, run a client query against every registered
# workload (plus the catalogs, a sweep, and a small load burst), check
# exit codes, and shut the server down with SIGINT.
set -u

cd "$(dirname "$0")/.."

fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

echo "smoke: building..."
dune build bin test || fail "dune build"

SKOPE=_build/default/bin/skope.exe

echo "smoke: lint gate (all bundled workloads + examples, deny warnings)"
"$SKOPE" lint --workloads --deny warnings >/dev/null \
    || fail "bundled workloads do not lint clean"
"$SKOPE" lint examples/skeletons/heat2d.skope -i n=512 -i maxiter=100 \
    --deny warnings >/dev/null || fail "heat2d.skope does not lint clean"
"$SKOPE" lint examples/skeletons/nbody.skope -i nbody=4096 -i nsteps=10 \
    --deny warnings >/dev/null || fail "nbody.skope does not lint clean"

echo "smoke: lint failure path exits nonzero with structured output"
BROKEN=$(mktemp /tmp/skoped-smoke.XXXXXX.skope)
printf 'program broken\ndef main()\n{\n  let z = 2 - 2\n  comp flops=1/z\n}\n' \
    >"$BROKEN"
if "$SKOPE" lint "$BROKEN" >/dev/null 2>&1; then
    rm -f "$BROKEN"
    fail "lint accepted a division by zero"
fi
"$SKOPE" lint "$BROKEN" --format json 2>/dev/null \
    | grep -q '"code":"L002"' || { rm -f "$BROKEN"; fail "lint json missing L002"; }
rm -f "$BROKEN"

echo "smoke: version"
"$SKOPE" --version | grep -q '^1\.' || fail "skope --version"

echo "smoke: traced analyze produces a loadable Chrome trace"
TRACE=$(mktemp /tmp/skoped-smoke.XXXXXX.trace.json)
"$SKOPE" analyze -w sord --trace "$TRACE" >/dev/null 2>&1 \
    || { rm -f "$TRACE"; fail "traced analyze"; }
"$SKOPE" json-check "$TRACE" >/dev/null \
    || { rm -f "$TRACE"; fail "trace is not valid JSON"; }
grep -q '"ph":"X"' "$TRACE" || { rm -f "$TRACE"; fail "trace has no complete events"; }
grep -q '"name":"bet_build"' "$TRACE" \
    || { rm -f "$TRACE"; fail "trace missing bet_build span"; }
rm -f "$TRACE"

echo "smoke: explore (multi-axis grid, text + ndjson)"
"$SKOPE" explore -w sord -m bgq --axis bw=7,14 --axis freq=0.8,1.6 \
    | grep -q 'pareto' || fail "explore text"
NDJSON=$("$SKOPE" explore -w sord -m bgq --axis bw=7,14 --axis freq=0.8,1.6 \
    --format ndjson) || fail "explore ndjson"
echo "$NDJSON" | grep -q '"tag":"bw=7.0,freq=0.8"' \
    || fail "explore ndjson missing grid point"
echo "$NDJSON" | grep -q '"pareto"' || fail "explore ndjson missing summary"

PORT=$(( (RANDOM % 20000) + 20000 ))
LOG=$(mktemp /tmp/skoped-smoke.XXXXXX.log)

echo "smoke: starting skoped on port $PORT"
"$SKOPE" serve --port "$PORT" >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill -9 $SERVER_PID 2>/dev/null; rm -f "$LOG"' EXIT

# Wait for the listening line.
for _ in $(seq 1 50); do
    grep -q "listening" "$LOG" 2>/dev/null && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG" >&2; fail "server died on startup"; }
    sleep 0.1
done
grep -q "listening" "$LOG" || fail "server never became ready"

q() { "$SKOPE" query --port "$PORT" "$@"; }

echo "smoke: catalogs"
q --kind workloads >/dev/null || fail "workloads request"
q --kind machines  >/dev/null || fail "machines request"

WORKLOADS=$(q --kind workloads \
    | tr ',' '\n' | sed -n 's/.*"name":"\([^"]*\)".*/\1/p')
[ -n "$WORKLOADS" ] || fail "could not list workloads"

for w in $WORKLOADS; do
    for m in bgq xeon future; do
        echo "smoke: analyze $w on $m"
        q -w "$w" -m "$m" >/dev/null || fail "analyze $w on $m"
    done
done

echo "smoke: sweep + cache-warm repeat"
q --kind sweep -w sord -m bgq --axis bw --values 7,14,28,56 >/dev/null \
    || fail "sweep"
q --kind sweep -w sord -m bgq --axis bw --values 7,14,28,56 >/dev/null \
    || fail "re-sweep"

echo "smoke: explore request (grid + cache-warm repeat)"
q --kind explore -w sord -m bgq --axes bw=7,14 --axes freq=0.8,1.6 \
    | grep -q '"pareto"' || fail "explore request"
q --kind explore -w sord -m bgq --axes bw=7,14 --axes freq=0.8,1.6 \
    >/dev/null || fail "explore repeat"

echo "smoke: capabilities + protocol version stamp"
CAPS=$(q --kind capabilities) || fail "capabilities request"
echo "$CAPS" | grep -q '"protocol":1' || fail "capabilities missing protocol"
echo "$CAPS" | grep -q '"explore"'    || fail "capabilities missing explore kind"
q --kind version | grep -q '"v":1' || fail "response not version-stamped"

echo "smoke: lint request kind"
q --kind lint -w sord >/dev/null || fail "lint request"
q --body '{"kind":"lint","source":"skeleton p { fn main() { flops(1); } }"}' \
    >/dev/null || fail "lint source request"

echo "smoke: error paths return structured errors (and nonzero exit)"
q -w no-such-workload >/dev/null 2>&1 && fail "unknown workload accepted"
q --body 'not json'   >/dev/null 2>&1 && fail "malformed body accepted"

echo "smoke: load burst"
q -w srad -m bgq --repeat 200 --concurrency 4 || fail "load burst"

q --kind stats | grep -q '"cache_hits"' || fail "stats request"
q --stats | grep -q 'Per-phase latency' || fail "stats table"

echo "smoke: version request"
q --kind version | grep -q '"version"' || fail "version request"

echo "smoke: Prometheus exposition"
PROM=$(mktemp /tmp/skoped-smoke.XXXXXX.prom)
q --kind metrics_prom >"$PROM" || { rm -f "$PROM"; fail "metrics_prom request"; }
for family in \
    'skope_requests_total{' \
    'skope_request_latency_seconds_bucket{le="+Inf"}' \
    'skope_phase_duration_seconds_bucket{phase="parse"' \
    'skope_phase_duration_seconds_bucket{phase="bet_build"' \
    'skope_phase_duration_seconds_bucket{phase="eval"' \
    'skope_phase_duration_seconds_bucket{phase="lint"' \
    'skope_phase_duration_seconds_bucket{phase="report"' \
    'skope_lru_entries' \
    'skope_queue_depth' \
    'skope_build_info{'
do
    grep -qF "$family" "$PROM" \
        || { rm -f "$PROM"; fail "exposition missing $family"; }
done
rm -f "$PROM"

echo "smoke: shutting down (SIGINT)"
kill -INT "$SERVER_PID" || fail "server already gone"
for _ in $(seq 1 50); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$SERVER_PID" 2>/dev/null && fail "server did not exit on SIGINT"
trap 'rm -f "$LOG"' EXIT

grep -q "bye" "$LOG" || fail "missing shutdown stats line"
echo "smoke: OK"
