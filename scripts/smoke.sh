#!/usr/bin/env bash
# Pre-PR smoke check for the skoped service layer: build, start the
# server on an ephemeral port, run a client query against every
# registered workload (plus the catalogs, a sweep, and a small load
# burst), then exercise the reliability layer end to end: structured
# errors against a dead port, retries riding through injected
# connection drops, client deadlines against a stalled server, and
# load shedding on a saturated queue.  All servers are torn down by an
# EXIT trap, pass or fail.
set -euo pipefail

cd "$(dirname "$0")/.."

fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

# --- teardown ---------------------------------------------------------

SERVER_PIDS=()
TEMP_FILES=()

cleanup() {
    local pid
    for pid in ${SERVER_PIDS[@]+"${SERVER_PIDS[@]}"}; do
        kill -INT "$pid" 2>/dev/null || true
    done
    for pid in ${SERVER_PIDS[@]+"${SERVER_PIDS[@]}"}; do
        for _ in $(seq 1 50); do
            kill -0 "$pid" 2>/dev/null || break
            sleep 0.1
        done
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -f ${TEMP_FILES[@]+"${TEMP_FILES[@]}"}
}
trap cleanup EXIT

mktmp() {
    local f
    f=$(mktemp "/tmp/skoped-smoke.XXXXXX$1")
    TEMP_FILES+=("$f")
    echo "$f"
}

# --- build ------------------------------------------------------------

echo "smoke: building..."
dune build bin test || fail "dune build"

SKOPE=_build/default/bin/skope.exe

# --- offline checks ---------------------------------------------------

echo "smoke: lint gate (all bundled workloads + examples, deny warnings)"
"$SKOPE" lint --workloads --deny warnings >/dev/null \
    || fail "bundled workloads do not lint clean"
"$SKOPE" lint examples/skeletons/heat2d.skope -i n=512 -i maxiter=100 \
    --deny warnings >/dev/null || fail "heat2d.skope does not lint clean"
"$SKOPE" lint examples/skeletons/nbody.skope -i nbody=4096 -i nsteps=10 \
    --deny warnings >/dev/null || fail "nbody.skope does not lint clean"

echo "smoke: lint failure path exits nonzero with structured output"
BROKEN=$(mktmp .skope)
printf 'program broken\ndef main()\n{\n  let z = 2 - 2\n  comp flops=1/z\n}\n' \
    >"$BROKEN"
if "$SKOPE" lint "$BROKEN" >/dev/null 2>&1; then
    fail "lint accepted a division by zero"
fi
("$SKOPE" lint "$BROKEN" --format json 2>/dev/null || true) \
    | grep -q '"code":"L002"' || fail "lint json missing L002"

echo "smoke: audit gate (all bundled workloads, deny warnings)"
"$SKOPE" audit --workloads --deny warnings >/dev/null \
    || fail "bundled workloads do not audit clean of warnings"

echo "smoke: audit flags a static send/recv deadlock as an error"
RING=$(mktmp .skope)
printf 'program ring\ndef main(p, rank) {\n  lib recv_left scale 64\n  lib send_right scale 64\n}\n' \
    >"$RING"
if "$SKOPE" audit "$RING" -i p=4 -i rank=0 >/dev/null 2>&1; then
    fail "audit accepted a recv-first ring"
fi
("$SKOPE" audit "$RING" -i p=4 -i rank=0 --format json 2>/dev/null || true) \
    | grep -q '"code":"A007"' || fail "audit json missing A007"

echo "smoke: audit --deny warnings escalates an Amdahl finding"
SERIAL=$(mktmp .skope)
printf 'program serial\ndef main(n, p) {\n  @par: for i = 1 to n / p {\n    comp flops=8\n  }\n  @ser: for j = 1 to n {\n    comp flops=4\n  }\n}\n' \
    >"$SERIAL"
"$SKOPE" audit "$SERIAL" -i n=65536 -i p=8 >/dev/null \
    || fail "warnings alone must not fail the default audit"
if "$SKOPE" audit "$SERIAL" -i n=65536 -i p=8 --deny warnings >/dev/null 2>&1; then
    fail "audit --deny warnings accepted a serial bottleneck"
fi

echo "smoke: version"
"$SKOPE" --version | grep -q '^1\.' || fail "skope --version"

echo "smoke: traced analyze produces a loadable Chrome trace"
TRACE=$(mktmp .trace.json)
"$SKOPE" analyze -w sord --trace "$TRACE" >/dev/null 2>&1 \
    || fail "traced analyze"
"$SKOPE" json-check "$TRACE" >/dev/null || fail "trace is not valid JSON"
grep -q '"ph":"X"' "$TRACE" || fail "trace has no complete events"
grep -q '"name":"bet_build"' "$TRACE" || fail "trace missing bet_build span"

echo "smoke: explore (multi-axis grid, text + ndjson)"
# Capture instead of piping into grep -q: with pipefail, grep's early
# exit would SIGPIPE the producer and fail the gate spuriously.
EXPLORE=$("$SKOPE" explore -w sord -m bgq --axis bw=7,14 --axis freq=0.8,1.6) \
    || fail "explore"
echo "$EXPLORE" | grep -q 'pareto' || fail "explore text"
NDJSON=$("$SKOPE" explore -w sord -m bgq --axis bw=7,14 --axis freq=0.8,1.6 \
    --format ndjson) || fail "explore ndjson"
echo "$NDJSON" | grep -q '"tag":"bw=7.0,freq=0.8"' \
    || fail "explore ndjson missing grid point"
echo "$NDJSON" | grep -q '"pareto"' || fail "explore ndjson missing summary"

echo "smoke: arena engine matches tree byte for byte"
# The summary line carries wall-clock (elapsed_ms), so compare only
# the per-point lines; -j 1 pins the emission order.
TREE_PTS=$("$SKOPE" explore -w sord -m bgq --axis bw=7,14 --axis freq=0.8,1.6 \
    --engine tree -j 1 --format ndjson | grep '"tag"') || fail "tree explore"
ARENA_PTS=$("$SKOPE" explore -w sord -m bgq --axis bw=7,14 --axis freq=0.8,1.6 \
    --engine arena -j 1 --format ndjson | grep '"tag"') || fail "arena explore"
[ "$TREE_PTS" = "$ARENA_PTS" ] \
    || fail "arena ndjson points differ from tree"

# --- server lifecycle -------------------------------------------------

# start_server LOGFILE [serve flags...] -> SERVER_PID, SERVER_PORT.
# Binds port 0 (the kernel hands out a free port, so there is nothing
# to race) and parses the bound port from the listening line; retries
# a couple of times anyway in case the server dies on startup.
start_server() {
    local log=$1; shift
    local attempt
    for attempt in 1 2 3; do
        : >"$log"
        "$SKOPE" serve --port 0 "$@" >"$log" 2>&1 &
        SERVER_PID=$!
        SERVER_PIDS+=("$SERVER_PID")
        for _ in $(seq 1 50); do
            grep -q "listening" "$log" 2>/dev/null && break
            kill -0 "$SERVER_PID" 2>/dev/null || break
            sleep 0.1
        done
        SERVER_PORT=$(sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' "$log")
        if [ -n "$SERVER_PORT" ]; then
            return 0
        fi
        echo "smoke: server start attempt $attempt failed; retrying" >&2
        kill -9 "$SERVER_PID" 2>/dev/null || true
    done
    cat "$log" >&2
    fail "server never became ready"
}

# stop_server PID: graceful SIGINT shutdown, bounded wait.
stop_server() {
    local pid=$1
    kill -INT "$pid" || fail "server $pid already gone"
    for _ in $(seq 1 50); do
        kill -0 "$pid" 2>/dev/null || return 0
        sleep 0.1
    done
    fail "server $pid did not exit on SIGINT"
}

LOG=$(mktmp .log)
start_server "$LOG"
MAIN_PID=$SERVER_PID
echo "smoke: skoped up on port $SERVER_PORT"

q() { "$SKOPE" query --port "$SERVER_PORT" "$@"; }

echo "smoke: catalogs"
q --kind workloads >/dev/null || fail "workloads request"
q --kind machines  >/dev/null || fail "machines request"

WORKLOADS=$(q --kind workloads \
    | tr ',' '\n' | sed -n 's/.*"name":"\([^"]*\)".*/\1/p')
[ -n "$WORKLOADS" ] || fail "could not list workloads"

for w in $WORKLOADS; do
    for m in bgq xeon future; do
        echo "smoke: analyze $w on $m"
        q -w "$w" -m "$m" >/dev/null || fail "analyze $w on $m"
    done
done

echo "smoke: sweep + cache-warm repeat"
q --kind sweep -w sord -m bgq --axis bw --values 7,14,28,56 >/dev/null \
    || fail "sweep"
q --kind sweep -w sord -m bgq --axis bw --values 7,14,28,56 >/dev/null \
    || fail "re-sweep"

echo "smoke: explore request (grid + cache-warm repeat)"
EXPLORE=$(q --kind explore -w sord -m bgq --axes bw=7,14 --axes freq=0.8,1.6) \
    || fail "explore request"
echo "$EXPLORE" | grep -q '"pareto"' || fail "explore request result"
q --kind explore -w sord -m bgq --axes bw=7,14 --axes freq=0.8,1.6 \
    >/dev/null || fail "explore repeat"

echo "smoke: capabilities + protocol version stamp"
CAPS=$(q --kind capabilities) || fail "capabilities request"
echo "$CAPS" | grep -q '"protocol":1' || fail "capabilities missing protocol"
echo "$CAPS" | grep -q '"explore"'    || fail "capabilities missing explore kind"
echo "$CAPS" | grep -q '"bet_engines"' || fail "capabilities missing bet_engines"
echo "$CAPS" | grep -q '"arena"'      || fail "capabilities missing arena engine"
q --kind version | grep -q '"v":1' || fail "response not version-stamped"

echo "smoke: lint request kind"
q --kind lint -w sord >/dev/null || fail "lint request"
q --body '{"kind":"lint","source":"skeleton p { fn main() { flops(1); } }"}' \
    >/dev/null || fail "lint source request"

echo "smoke: error paths return structured errors (and nonzero exit)"
if q -w no-such-workload >/dev/null 2>&1; then fail "unknown workload accepted"; fi
if q --body 'not json' >/dev/null 2>&1; then fail "malformed body accepted"; fi

echo "smoke: load burst"
q -w srad -m bgq --repeat 200 --concurrency 4 || fail "load burst"

echo "smoke: generated corpus is deterministic and replays as loadgen traffic"
CORPUS_DIR=$(mktemp -d /tmp/skoped-smoke-corpus.XXXXXX)
"$SKOPE" gen --seed 42 --count 20 --out "$CORPUS_DIR" >/dev/null \
    || fail "skope gen"
SUM1=$(cat "$CORPUS_DIR"/*.skope "$CORPUS_DIR"/corpus.json | cksum)
rm -rf "$CORPUS_DIR"
# Same seed, different worker count: the corpus must be byte-identical.
"$SKOPE" gen --seed 42 --count 20 --jobs 4 --out "$CORPUS_DIR" >/dev/null \
    || fail "skope gen --jobs 4"
SUM2=$(cat "$CORPUS_DIR"/*.skope "$CORPUS_DIR"/corpus.json | cksum)
[ "$SUM1" = "$SUM2" ] || fail "corpus differs across --jobs (seed 42)"
q --kind lint --corpus "$CORPUS_DIR" --concurrency 4 \
    || fail "corpus lint replay"
q --kind audit --corpus "$CORPUS_DIR" || fail "corpus audit replay"
if q --kind analyze --corpus "$CORPUS_DIR" >/dev/null 2>&1; then
    fail "corpus replay accepted a non-source kind"
fi
rm -rf "$CORPUS_DIR"

STATS=$(q --kind stats) || fail "stats request"
echo "$STATS" | grep -q '"cache_hits"' || fail "stats missing cache_hits"
echo "$STATS" | grep -q '"counters"'   || fail "stats missing counters object"
STATS=$(q --stats) || fail "stats table request"
echo "$STATS" | grep -q 'Per-phase latency' || fail "stats table"

echo "smoke: version request"
q --kind version | grep -q '"version"' || fail "version request"

echo "smoke: trace id propagates end to end and exports a Chrome trace"
R=$(q -w sord -m bgq --trace-id smoke-trace-1) || fail "traced analyze request"
echo "$R" | grep -q '"trace_id":"smoke-trace-1"' \
    || fail "response does not echo the caller's trace id"
CHROME=$(mktmp .chrome.json)
TRACED=$(q --kind trace --trace-id smoke-trace-1 --chrome "$CHROME" \
    2>/dev/null) || fail "trace lookup"
echo "$TRACED" | grep -q '"trace_id":"smoke-trace-1"' \
    || fail "trace record missing the id"
echo "$TRACED" | grep -q '"spans"' || fail "trace record has no spans"
"$SKOPE" json-check "$CHROME" >/dev/null \
    || fail "exported Chrome trace is not valid JSON"
grep -q '"ph":"X"' "$CHROME" || fail "Chrome trace has no complete events"

echo "smoke: flight recorder lists recent requests"
RECENT=$(q --kind recent --last 10) || fail "recent request"
echo "$RECENT" | grep -q '"trace_id":"smoke-trace-1"' \
    || fail "recent does not list the traced request"
echo "$RECENT" | grep -q '"records"' || fail "recent missing records array"

echo "smoke: Prometheus exposition"
PROM=$(mktmp .prom)
q --kind metrics_prom >"$PROM" || fail "metrics_prom request"
for family in \
    'skope_requests_total{' \
    'skope_request_latency_seconds_bucket{le="+Inf"}' \
    'skope_phase_duration_seconds_bucket{phase="parse"' \
    'skope_phase_duration_seconds_bucket{phase="bet_build"' \
    'skope_phase_duration_seconds_bucket{phase="eval"' \
    'skope_phase_duration_seconds_bucket{phase="lint"' \
    'skope_phase_duration_seconds_bucket{phase="report"' \
    'skope_lru_entries' \
    'skope_queue_depth' \
    'skope_build_info{'
do
    grep -qF "$family" "$PROM" || fail "exposition missing $family"
done

echo "smoke: shutting down main server (SIGINT)"
stop_server "$MAIN_PID"
grep -q "bye" "$LOG" || fail "missing shutdown stats line"

# --- reliability gates ------------------------------------------------

echo "smoke: dead port yields a structured refused error"
# The just-stopped server's port is free again: nothing is listening.
ERR=$(mktmp .err)
if "$SKOPE" query --port "$SERVER_PORT" --kind version --retries 0 \
    >/dev/null 2>"$ERR"; then
    fail "query against a dead port succeeded"
fi
grep -q 'refused' "$ERR" || { cat "$ERR" >&2; fail "dead-port error not structured (want 'refused')"; }

echo "smoke: 30% connection drops, fixed seed: 50 requests all recover via retries"
DROP_LOG=$(mktmp .log)
start_server "$DROP_LOG" --fault-inject drop=0.3 --fault-seed 7
DROP_PID=$SERVER_PID
DROP_PORT=$SERVER_PORT
REPORT=$("$SKOPE" query --port "$DROP_PORT" --kind version \
    --repeat 50 --concurrency 2 --retries 8 --retry-base-ms 5 --retry-max-ms 40) \
    || { echo "$REPORT" >&2; fail "load under 30% drops did not fully recover"; }
echo "$REPORT"
echo "$REPORT" | grep -q '(0 failed' || fail "drop run reported failures"
echo "$REPORT" | grep -Eq '[1-9][0-9]* retries' \
    || fail "drop run reported no retries (faults not injected?)"
STATS=$("$SKOPE" query --port "$DROP_PORT" --kind stats) \
    || fail "drop-server stats request"
echo "$STATS" | grep -q '"faults_injected"' \
    || fail "stats missing faults_injected counter"
echo "smoke: injected faults leave attributable structured log events"
grep -q '"event":"fault_injected"' "$DROP_LOG" \
    || fail "server log missing fault_injected events"
grep '"event":"fault_injected"' "$DROP_LOG" | head -n 1 \
    | grep -q '"seed":7' || fail "fault_injected event missing the seed"
grep '"event":"fault_injected"' "$DROP_LOG" | head -n 1 \
    | grep -q '"fault":' || fail "fault_injected event missing the fault kind"
stop_server "$DROP_PID"

echo "smoke: stalled server trips the client read deadline"
SLOW_LOG=$(mktmp .log)
start_server "$SLOW_LOG" --pool 1 --queue 1 \
    --fault-inject delay_p=1,delay_ms=800 --fault-seed 1
SLOW_PID=$SERVER_PID
SLOW_PORT=$SERVER_PORT
if "$SKOPE" query --port "$SLOW_PORT" --kind version \
    --retries 0 --io-timeout-ms 200 >/dev/null 2>"$ERR"; then
    fail "query against a stalled server succeeded"
fi
grep -q 'timeout' "$ERR" || { cat "$ERR" >&2; fail "stall error not structured (want 'timeout')"; }
sleep 1  # let the delayed response drain so the worker is idle again

echo "smoke: saturated queue sheds with a structured overloaded error, fast"
# Worker pinned for 800 ms by one request, queue slot held by a
# second: the third must be shed from the accept loop immediately.
shed_once() {
    "$SKOPE" query --port "$SLOW_PORT" --kind version --retries 0 \
        >/dev/null 2>&1 &
    BG1=$!
    sleep 0.2
    "$SKOPE" query --port "$SLOW_PORT" --kind version --retries 0 \
        >/dev/null 2>&1 &
    BG2=$!
    sleep 0.2
    local t0 t1 status=0
    t0=$(date +%s%N)
    "$SKOPE" query --port "$SLOW_PORT" --kind version --retries 0 \
        >/dev/null 2>"$ERR" || status=$?
    t1=$(date +%s%N)
    SHED_MS=$(( (t1 - t0) / 1000000 ))
    wait "$BG1" "$BG2" 2>/dev/null || true
    [ "$status" -ne 0 ] && grep -q 'overloaded' "$ERR"
}
# Timing gate with a couple of attempts so a cold page cache or a busy
# CI host cannot flake the run; the sub-100ms bound must hold once.
SHED_OK=0
for attempt in 1 2 3; do
    if shed_once && [ "$SHED_MS" -lt 100 ]; then
        echo "smoke: shed response in ${SHED_MS} ms"
        SHED_OK=1
        break
    fi
    echo "smoke: shed attempt $attempt: ${SHED_MS:-?} ms; retrying" >&2
    sleep 1
done
[ "$SHED_OK" -eq 1 ] || fail "saturated queue did not shed in under 100 ms"
STATS=$("$SKOPE" query --port "$SLOW_PORT" --kind stats --retries 6) \
    || fail "slow-server stats request"
echo "$STATS" | grep -q '"requests_shed"' \
    || fail "stats missing requests_shed counter"

echo "smoke: the shed request is visible in the flight recorder"
RECENT=$("$SKOPE" query --port "$SLOW_PORT" --kind recent --last 20 \
    --retries 6) || fail "slow-server recent request"
echo "$RECENT" | grep -q '"trace_id":"shed-' \
    || fail "recent missing the shed request's synthetic trace id"
echo "$RECENT" | grep -q '"outcome":"overloaded"' \
    || fail "shed record not marked overloaded"
grep -q '"event":"request_shed"' "$SLOW_LOG" \
    || fail "server log missing request_shed event"
stop_server "$SLOW_PID"

# --- cluster gates ----------------------------------------------------

echo "smoke: cluster router gates (health, affinity, failover)"
bash scripts/cluster_smoke.sh || fail "cluster smoke"

echo "smoke: OK"
