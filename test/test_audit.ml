(* Audit subsystem: the symbolic cost model (reconciliation against an
   independently built BET, cross-scale exactness of the closed
   forms), the rendezvous communication simulator, the A001..A008
   rules on seeded fixtures, and skoped protocol/dispatch/cluster
   parity for the audit kind. *)

open Core
module S = Lint.Symbolic
module A = Lint.Audit
module D = Lint.Diagnostic
module Cs = Multinode.Commsim
module Service = Skope_service
module Json = Report.Json
module Registry = Workloads.Registry
module Value = Bet.Value
module Eval = Bet.Eval
module Work = Bet.Work

let lib_work = Hw.Libmix.work_fn Hw.Libmix.default

let parse name src = Skeleton.Parser.parse ~file:name src

let codes ds = List.map (fun (d : D.t) -> d.D.code) ds

let has_code c ds = List.mem c (codes ds)

let audit ?(disabled = []) ~inputs src_name src =
  let config = { A.default_config with A.disabled } in
  (A.run ~config ~inputs (parse src_name src)).A.diags

(* --- symbolic smart constructors ------------------------------------ *)

let test_symbolic_constructors () =
  let n = Skeleton.Ast.Var "n" in
  Alcotest.(check bool) "x + 0 folds" true (S.add n (S.cf 0.) = n);
  Alcotest.(check bool) "1 * x folds" true (S.mul (S.cf 1.) n = n);
  Alcotest.(check bool) "0 * x folds to 0" true (S.mul (S.cf 0.) n = S.cf 0.);
  Alcotest.(check bool) "x / 1 folds" true (S.div n (S.cf 1.) = n);
  Alcotest.(check bool) "min x x folds" true (S.min_ n n = n);
  Alcotest.(check (float 0.)) "constant sums evaluate exactly" 5.
    (Eval.eval_float ~default:Float.nan Eval.Smap.empty
       (S.add (S.cf 2.) (S.cf 3.)));
  Alcotest.(check bool) "size counts nodes" true (S.size (S.add n n) = 3);
  (* growth order of n^2 along an n-doubling sweep is ~2 *)
  let sq = S.mul n n in
  let eval_at m =
    Eval.env_of_list [ ("n", Value.F (64. *. m)) ]
  in
  (match S.growth_order ~eval_at sq with
  | Some o -> Alcotest.(check (float 1e-9)) "n^2 has order 2" 2. o
  | None -> Alcotest.fail "growth_order failed on n^2");
  let rendered = Fmt.str "%a" S.pp_closed_form sq in
  Alcotest.(check bool) ("closed form mentions n: " ^ rendered) true
    (String.length rendered > 0)

(* --- fleet soundness: zero fallbacks on every bundled workload ------ *)

let test_fleet_soundness () =
  List.iter
    (fun (w : Registry.t) ->
      let program, inputs = w.make ~scale:w.default_scale in
      let r = S.derive ~lib_work ~inputs program in
      Alcotest.(check int)
        (w.name ^ ": no symbolic fallbacks")
        0 r.S.fallbacks;
      Alcotest.(check int)
        (w.name ^ ": no shape mismatches")
        0 r.S.shape_mismatches;
      Alcotest.(check bool) (w.name ^ ": expressions were checked") true
        (r.S.checked > 0);
      Alcotest.(check bool) (w.name ^ ": non-trivial tree") true
        (S.node_count r.S.sroot > 1))
    Registry.all

(* --- cross-scale exactness ------------------------------------------ *)

(* Total expected flops of a symbolic tree, as (concrete at the
   reference inputs, closed form).  Both sides use the same fold so
   the comparison is apples to apples. *)
let totals root =
  S.fold_enr
    (fun (cref, csym) (n : S.node) ~enr_ref ~enr_sym ->
      ( cref +. (enr_ref *. n.S.trips_ref *. n.S.work_ref.Work.flops),
        S.add csym
          (S.mul enr_sym (S.mul n.S.trips n.S.work.S.s_flops)) ))
    (0., S.cf 0.)
    root

(* The acceptance-criterion property: for every bundled workload, the
   closed form derived at the default scale, evaluated at the inputs
   of a different scale, reproduces bit-for-bit the concrete total of
   a fresh derivation at that scale.  3+ workloads x 3 scales. *)
let test_cross_scale_exact () =
  List.iter
    (fun (w : Registry.t) ->
      let program, inputs = w.make ~scale:w.default_scale in
      let r = S.derive ~lib_work ~inputs program in
      let ref_total, sym_total = totals r.S.sroot in
      (* at the reference inputs the closed form reproduces the BET *)
      Alcotest.(check bool)
        (w.name ^ ": closed form is exact at the reference scale")
        true
        (Float.equal ref_total
           (Eval.eval_float ~default:Float.nan
              (Eval.env_of_list inputs) sym_total));
      List.iter
        (fun m ->
          let _, inputs_m = w.make ~scale:(w.default_scale *. m) in
          let rm = S.derive ~lib_work ~inputs:inputs_m program in
          let expected, _ = totals rm.S.sroot in
          let predicted =
            Eval.eval_float ~default:Float.nan
              (Eval.env_of_list inputs_m) sym_total
          in
          Alcotest.(check bool)
            (Fmt.str "%s: exact prediction at %gx (%g vs %g)" w.name m
               predicted expected)
            true
            (Float.equal expected predicted))
        [ 0.5; 2.; 4. ])
    Registry.all

(* --- communication simulator ---------------------------------------- *)

let test_commsim () =
  (* a matched pair completes *)
  Alcotest.(check bool) "matched pair is clean" true
    (Cs.simulate [| [ Cs.Send 1 ]; [ Cs.Recv 0 ] |] = Cs.Clean);
  (* classic ring: everyone sends right first; nobody can receive *)
  let ring n =
    Array.init n (fun r -> [ Cs.Send ((r + 1) mod n); Cs.Recv ((r + n - 1) mod n) ])
  in
  (match Cs.simulate (ring 4) with
  | Cs.Deadlock { stuck; cycle } ->
    Alcotest.(check int) "all 4 ranks stuck" 4 (List.length stuck);
    Alcotest.(check bool) "wait-for cycle found" true (List.length cycle >= 2)
  | Cs.Clean -> Alcotest.fail "send-ring must deadlock");
  (* phased even/odd ring drains to completion *)
  let phased n =
    Array.init n (fun r ->
        let nxt = (r + 1) mod n and prv = (r + n - 1) mod n in
        if r mod 2 = 0 then [ Cs.Send nxt; Cs.Recv prv ]
        else [ Cs.Recv prv; Cs.Send nxt ])
  in
  Alcotest.(check bool) "phased ring is clean" true
    (Cs.simulate (phased 4) = Cs.Clean);
  (* chain to a terminated rank: stuck, but no cycle to report *)
  (match Cs.simulate [| [ Cs.Recv 1 ]; [] |] with
  | Cs.Deadlock { stuck; cycle } ->
    Alcotest.(check int) "one stuck rank" 1 (List.length stuck);
    Alcotest.(check int) "no cycle through a terminated rank" 0
      (List.length cycle)
  | Cs.Clean -> Alcotest.fail "recv from a terminated rank must block");
  (* ops render for the A007 notes *)
  Alcotest.(check string) "pp send" "send->2" (Fmt.str "%a" Cs.pp_op (Cs.Send 2));
  Alcotest.(check string) "pp recv" "recv<-0" (Fmt.str "%a" Cs.pp_op (Cs.Recv 0))

(* --- seeded fixtures for the A rules -------------------------------- *)

let spmd_src =
  "program spmd\n\
   def main(n, p) {\n\
  \  @par: for i = 1 to n / p {\n\
  \    comp flops=8\n\
  \    load a[1]\n\
  \  }\n\
  \  @ser: for j = 1 to n {\n\
  \    comp flops=4\n\
  \  }\n\
  \  lib send_right scale n\n\
   }\n\
   array a[n] : f64\n"

let comm_src =
  "program comm\n\
   def main(n, p) {\n\
  \  @par: for i = 1 to n / p {\n\
  \    comp flops=8\n\
  \  }\n\
  \  lib send_right scale n\n\
   }\n"

let imb_src =
  "program imb\n\
   def main(n, rank) {\n\
  \  for i = 1 to n {\n\
  \    comp flops=2\n\
  \  }\n\
  \  if (rank == 0) {\n\
  \    for j = 1 to n {\n\
  \      comp flops=64\n\
  \    }\n\
  \  }\n\
   }\n"

let ring_src =
  "program ring\n\
   def main(p, rank) {\n\
  \  lib recv_left scale 64\n\
  \  lib send_right scale 64\n\
   }\n"

let phased_src =
  "program phased\n\
   def main(p, rank) {\n\
  \  if (rank % 2 == 0) {\n\
  \    lib send_right scale 64\n\
  \    lib recv_left scale 64\n\
  \  } else {\n\
  \    lib recv_left scale 64\n\
  \    lib send_right scale 64\n\
  \  }\n\
   }\n"

let test_rule_amdahl_and_working_set () =
  let inputs = [ ("n", Value.I 65536); ("p", Value.I 8) ] in
  let ds = audit ~disabled:[ "A007" ] ~inputs "spmd.skope" spmd_src in
  Alcotest.(check bool) "A001 fires on the serial loop" true
    (has_code "A001" ds);
  Alcotest.(check bool) "A003 fires on the large array loop" true
    (has_code "A003" ds);
  let a1 = List.find (fun (d : D.t) -> d.D.code = "A001") ds in
  Alcotest.(check bool) "A001 is a warning" true (a1.D.severity = D.Warning);
  Alcotest.(check bool) "A001 names the p parameter" true
    (let m = a1.D.message in
     String.length m > 0
     &&
     let rec has i =
       i + 3 <= String.length m && (String.sub m i 3 = "`p`" || has (i + 1))
     in
     has 0);
  (* rule gating: disabling A001 removes exactly it *)
  let ds' = audit ~disabled:[ "A001"; "A007" ] ~inputs "spmd.skope" spmd_src in
  Alcotest.(check bool) "disabled A001 is gone" false (has_code "A001" ds');
  Alcotest.(check bool) "A003 survives the gating" true (has_code "A003" ds')

let test_rule_comm_outgrows_comp () =
  let inputs = [ ("n", Value.I 65536); ("p", Value.I 8) ] in
  let ds = audit ~disabled:[ "A007" ] ~inputs "comm.skope" comm_src in
  Alcotest.(check bool) "A002 fires" true (has_code "A002" ds);
  let a2 = List.find (fun (d : D.t) -> d.D.code = "A002") ds in
  Alcotest.(check bool) "A002 is a warning" true (a2.D.severity = D.Warning)

let test_rule_load_imbalance () =
  let inputs = [ ("n", Value.I 1024); ("rank", Value.I 0) ] in
  let ds = audit ~inputs "imb.skope" imb_src in
  Alcotest.(check bool) "A006 fires on rank-0 extra work" true
    (has_code "A006" ds);
  let a6 = List.find (fun (d : D.t) -> d.D.code = "A006") ds in
  Alcotest.(check bool) "A006 is a warning" true (a6.D.severity = D.Warning)

let test_rule_deadlock () =
  let inputs = [ ("p", Value.I 4); ("rank", Value.I 0) ] in
  let ds = audit ~inputs "ring.skope" ring_src in
  Alcotest.(check bool) "A007 fires on the recv-first ring" true
    (has_code "A007" ds);
  let a7 = List.find (fun (d : D.t) -> d.D.code = "A007") ds in
  Alcotest.(check bool) "A007 is an error" true (a7.D.severity = D.Error);
  Alcotest.(check bool) "A007 names a wait-for cycle" true
    (let m = a7.D.message in
     let rec has i =
       i + 5 <= String.length m && (String.sub m i 5 = "cycle" || has (i + 1))
     in
     has 0);
  Alcotest.(check bool) "A007 notes each blocked rank" true
    (List.length a7.D.notes >= 4);
  (* the phased variant of the same traffic is clean *)
  let clean = audit ~inputs "phased.skope" phased_src in
  Alcotest.(check int) "phased even/odd ring audits clean" 0
    (List.length clean)

(* --- skoped protocol + dispatch parity ------------------------------ *)

let handle ?(dispatch = Service.Dispatch.create ()) body =
  Service.Dispatch.handle dispatch body

let error_code response =
  match Json.of_string response with
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e response
  | Ok r -> (
    match Json.member "ok" r with
    | Some (Json.Bool true) -> Alcotest.failf "expected error: %s" response
    | _ -> (
      match Option.bind (Json.member "error" r) (Json.member "code") with
      | Some (Json.String c) -> c
      | _ -> Alcotest.failf "error without code: %s" response))

let result_of resp =
  match Json.of_string resp with
  | Ok j -> (
    Alcotest.(check bool) ("ok response: " ^ resp) true
      (Json.member "ok" j = Some (Json.Bool true));
    match Json.member "result" j with
    | Some r -> r
    | None -> Alcotest.failf "no result in %s" resp)
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e resp

let test_protocol_audit_errors () =
  let check name expected body =
    Alcotest.(check string) name expected (error_code (handle body))
  in
  check "workload or source required" "invalid_request" {|{"kind":"audit"}|};
  check "workload and source exclusive" "invalid_request"
    {|{"kind":"audit","workload":"sord","source":"program p\ndef main() {}"}|};
  check "unknown workload" "unknown_workload"
    {|{"kind":"audit","workload":"nope"}|};
  check "unknown machine" "unknown_machine"
    {|{"kind":"audit","workload":"sord","machine":"cray"}|};
  check "bad scale" "invalid_request"
    {|{"kind":"audit","workload":"sord","scale":-1}|};
  check "bad ranks" "invalid_request"
    {|{"kind":"audit","workload":"sord","ranks":0}|};
  check "huge ranks" "invalid_request"
    {|{"kind":"audit","workload":"sord","ranks":4096}|}

let test_service_api_audit_roundtrip () =
  let req =
    Service.Service_api.audit_workload ~scale:0.3 ~machine:"xeon" ~ranks:8
      ~deny_warnings:true ~disable:[ "A003" ] "sord"
  in
  Alcotest.(check string) "kind" "audit" (Service.Service_api.kind req);
  let body = Service.Service_api.to_body req in
  match Service.Protocol.parse_request body with
  | Ok (Service.Protocol.Audit q, _) ->
    Alcotest.(check (option string)) "workload" (Some "sord")
      q.Service.Protocol.a_workload;
    Alcotest.(check string) "machine" "xeon" q.Service.Protocol.a_machine;
    Alcotest.(check int) "ranks" 8 q.Service.Protocol.a_ranks;
    Alcotest.(check bool) "deny" true q.Service.Protocol.a_deny_warnings;
    Alcotest.(check (list string)) "disable" [ "A003" ]
      q.Service.Protocol.a_disabled
  | Ok _ -> Alcotest.fail "parsed to a non-audit request"
  | Error (_, m) -> Alcotest.failf "built body does not parse: %s" m

let test_dispatch_audit_workload () =
  let dispatch = Service.Dispatch.create () in
  let r = result_of (handle ~dispatch {|{"kind":"audit","workload":"sord"}|}) in
  Alcotest.(check bool) "no errors on sord" true
    (Json.member "errors" r = Some (Json.Int 0));
  (match Json.member "sym" r with
  | Some sym ->
    Alcotest.(check bool) "zero fallbacks" true
      (Json.member "fallbacks" sym = Some (Json.Int 0));
    Alcotest.(check bool) "zero shape mismatches" true
      (Json.member "shape_mismatches" sym = Some (Json.Int 0))
  | None -> Alcotest.fail "result has no sym block");
  (* dispatch output is byte-identical to the shared renderer the CLI
     uses: the parity the issue demands *)
  let w = Registry.find_exn "sord" in
  let config = A.default_config in
  let report = Pipeline.audit ~config ~workload:w ~scale:w.default_scale () in
  let direct =
    A.result_json ~target:"sord" ~scale:w.default_scale ~deny_warnings:false
      config report
  in
  Alcotest.(check string) "dispatch == CLI renderer"
    (Json.to_string direct) (Json.to_string r);
  (* audit requests are metered like every other kind *)
  let v = Service.Metrics.view dispatch.Service.Dispatch.metrics in
  Alcotest.(check int) "audit counted by kind" 1
    (try List.assoc ("audit", "ok") v.Service.Metrics.requests
     with Not_found -> 0)

let test_dispatch_audit_source () =
  (* inline deadlocking source: ok envelope, error diagnostics inside *)
  let body =
    Json.to_string
      (Json.Obj
         [
           ("kind", Json.String "audit");
           ("source", Json.String ring_src);
         ])
  in
  let r = result_of (handle body) in
  Alcotest.(check bool) "deadlock reported" true
    (match Json.member "errors" r with
    | Some (Json.Int n) -> n >= 1
    | _ -> false);
  Alcotest.(check bool) "not clean" true
    (Json.member "clean" r = Some (Json.Bool false));
  (* a parse failure still answers ok:true with P-diagnostics, no sym *)
  let bad =
    Json.to_string
      (Json.Obj
         [
           ("kind", Json.String "audit");
           ("source", Json.String "program oops\ndef main( {");
         ])
  in
  let r = result_of (handle bad) in
  Alcotest.(check bool) "parse failure carries diagnostics" true
    (match Json.member "diagnostics" r with
    | Some (Json.List (_ :: _)) -> true
    | _ -> false);
  Alcotest.(check bool) "no sym block without a program" true
    (Json.member "sym" r = None)

(* --- cluster parity -------------------------------------------------- *)

let test_cluster_audit_affinity () =
  let c =
    Skope_cluster.Local.start ~shards:2 ~cache_capacity:16
      ~probe_interval_s:0.1 ~shard_pool:1 ~router_pool:2 ()
  in
  Fun.protect
    ~finally:(fun () -> Skope_cluster.Local.stop c)
    (fun () ->
      let port = Skope_cluster.Local.router_port c in
      let body =
        Service.Service_api.to_body
          (Service.Service_api.audit_workload "pedagogical")
      in
      let request () =
        match
          Service.Client.request ~retry:Service.Client.default_retry
            ~host:"127.0.0.1" ~port body
        with
        | Ok r -> r
        | Error e -> Alcotest.failf "request failed: %a" Service.Client.pp_error e
      in
      let r1 = request () and r2 = request () in
      let shard resp =
        match Skope_cluster.Router.shard_of_response resp with
        | Some s -> s
        | None -> Alcotest.failf "no shard in %s" resp
      in
      Alcotest.(check string) "same body -> same shard" (shard r1) (shard r2);
      (* routed result matches a direct dispatch of the same body *)
      let strip_result resp = Json.to_string (result_of resp) in
      let direct = handle body in
      Alcotest.(check string) "cluster == single skoped"
        (strip_result direct) (strip_result r1))

(* --- JSON envelope shape --------------------------------------------- *)

let test_result_json_shape () =
  let w = Registry.find_exn "pedagogical" in
  let report =
    Pipeline.audit ~workload:w ~scale:w.default_scale ()
  in
  let j =
    A.result_json ~target:"pedagogical" ~scale:w.default_scale
      ~deny_warnings:false A.default_config report
  in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("field " ^ key) true (Json.member key j <> None))
    [
      "target"; "machine"; "scale"; "diagnostics"; "errors"; "warnings";
      "infos"; "clean"; "sym";
    ];
  Alcotest.(check bool) "pedagogical audits clean" true
    (Json.member "clean" j = Some (Json.Bool true));
  match Json.of_string (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "round trips" true (j = j')
  | Error e -> Alcotest.failf "does not re-parse: %s" e

let suite =
  [
    ( "audit.symbolic",
      [
        Alcotest.test_case "smart constructors" `Quick
          test_symbolic_constructors;
        Alcotest.test_case "fleet derives with zero fallbacks" `Slow
          test_fleet_soundness;
        Alcotest.test_case "closed forms are exact across scales" `Slow
          test_cross_scale_exact;
      ] );
    ( "audit.commsim",
      [ Alcotest.test_case "rendezvous semantics" `Quick test_commsim ] );
    ( "audit.rules",
      [
        Alcotest.test_case "A001/A003 + gating on the spmd fixture" `Quick
          test_rule_amdahl_and_working_set;
        Alcotest.test_case "A002 comm outgrows comp" `Quick
          test_rule_comm_outgrows_comp;
        Alcotest.test_case "A006 rank imbalance" `Quick test_rule_load_imbalance;
        Alcotest.test_case "A007 deadlock vs phased ring" `Quick
          test_rule_deadlock;
      ] );
    ( "audit.service",
      [
        Alcotest.test_case "protocol rejects bad audit bodies" `Quick
          test_protocol_audit_errors;
        Alcotest.test_case "service_api round trip" `Quick
          test_service_api_audit_roundtrip;
        Alcotest.test_case "dispatch workload parity with CLI renderer" `Quick
          test_dispatch_audit_workload;
        Alcotest.test_case "dispatch source + parse failure" `Quick
          test_dispatch_audit_source;
        Alcotest.test_case "result_json shape" `Quick test_result_json_shape;
        Alcotest.test_case "cluster affinity + parity" `Slow
          test_cluster_audit_affinity;
      ] );
  ]
