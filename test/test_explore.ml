(* Tests for the design-space exploration engine and its service
   surface: grid/sampling, shared-BET reuse equivalence, the Pareto
   frontier, explore-vs-sweep byte identity through Dispatch, the
   capabilities request, protocol versioning and the typed
   Service_api builders. *)

module Json = Core.Report.Json
module Service = Skope_service
module Explore = Skope_explore.Explore
module P = Core.Pipeline
module Designspace = Core.Hw.Designspace
module Machines = Core.Hw.Machines
module Registry = Core.Workloads.Registry
module Span = Core.Telemetry.Span

let bgq () = Option.get (Machines.find "bgq")
let sord () = Option.get (Registry.find "sord")

let handle ?received_at ?(dispatch = Service.Dispatch.create ()) body =
  Service.Dispatch.handle ?received_at dispatch body

let result_of response =
  match Json.of_string response with
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e response
  | Ok r -> (
    match (Json.member "ok" r, Json.member "result" r) with
    | Some (Json.Bool true), Some result -> result
    | _ -> Alcotest.failf "expected ok response: %s" response)

let error_of response =
  match Json.of_string response with
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e response
  | Ok r -> (
    match Json.member "ok" r with
    | Some (Json.Bool true) -> Alcotest.failf "expected error: %s" response
    | _ ->
      let err = Option.get (Json.member "error" r) in
      let str key =
        match Json.member key err with
        | Some (Json.String s) -> s
        | _ -> Alcotest.failf "error without %s: %s" key response
      in
      (str "code", str "message"))

(* --- grids and sampling -------------------------------------------- *)

let test_grid_shape () =
  let base = bgq () in
  let axes =
    [ Designspace.Mem_bandwidth [ 7.; 14. ]; Designspace.Vector_width [ 2; 4 ] ]
  in
  let pts = Designspace.grid base axes in
  Alcotest.(check int) "grid size" 4 (List.length pts);
  Alcotest.(check int) "grid_size agrees" 4 (Designspace.grid_size axes);
  Alcotest.(check (list string))
    "tags, first axis slowest"
    [ "bw=7.0,vec=2"; "bw=7.0,vec=4"; "bw=14.0,vec=2"; "bw=14.0,vec=4" ]
    (List.map (fun (p : Designspace.point) -> p.Designspace.p_tag) pts);
  (* single-axis tags are the bare sweep tags *)
  let single = Designspace.grid base [ Designspace.Mem_bandwidth [ 7.; 14. ] ] in
  Alcotest.(check (list string))
    "single-axis bare tags" [ "7.0"; "14.0" ]
    (List.map (fun (p : Designspace.point) -> p.Designspace.p_tag) single);
  (* values land on the machine *)
  let p = List.nth pts 3 in
  Alcotest.(check (float 1e-9)) "bw applied" 14.
    p.Designspace.p_machine.Core.Hw.Machine.mem_bw_gbs;
  Alcotest.(check int) "vec applied" 4
    p.Designspace.p_machine.Core.Hw.Machine.vector_width

let test_sample_deterministic () =
  let base = bgq () in
  let axes =
    [
      Designspace.Mem_bandwidth [ 1.; 2.; 4.; 8. ];
      Designspace.Frequency [ 0.8; 1.6; 3.2 ];
    ]
  in
  let tags seed =
    Designspace.sample ~seed ~n:6 base axes
    |> List.map (fun (p : Designspace.point) -> p.Designspace.p_tag)
  in
  Alcotest.(check (list string)) "same seed, same sample" (tags 7) (tags 7);
  let s = Designspace.sample ~n:6 base axes in
  Alcotest.(check bool) "at most n points" true (List.length s <= 6);
  Alcotest.(check bool) "non-empty" true (s <> []);
  (* latin-hypercube property: with n a multiple of the axis arity,
     every level of every axis is covered *)
  let covered key =
    List.sort_uniq compare
      (List.concat_map
         (fun (p : Designspace.point) ->
           List.filter_map
             (fun (k, v) -> if k = key then Some v else None)
             p.Designspace.p_values)
         (Designspace.sample ~seed:1 ~n:12 base axes))
  in
  Alcotest.(check int) "all bw levels drawn" 4 (List.length (covered "bw"));
  Alcotest.(check int) "all freq levels drawn" 3 (List.length (covered "freq"))

(* --- shared-BET reuse ---------------------------------------------- *)

(* The whole point of the engine: pricing a shared prepared BET must
   give exactly the result of running the full pipeline per point. *)
let test_reuse_equivalence () =
  let w = sord () in
  let scale = w.Registry.default_scale in
  let base = bgq () in
  let axes =
    [ Designspace.Frequency [ 0.8; 1.6 ]; Designspace.Mem_bandwidth [ 7.; 28. ] ]
  in
  let pts = Explore.grid_points base axes in
  let prepared = P.Prepared.create ~workload:w ~scale () in
  let r = Explore.evaluate prepared pts in
  Alcotest.(check int) "every point evaluated" 4 (List.length r.Explore.points);
  List.iter
    (fun (p : Explore.point) ->
      let fresh =
        P.analyze ~machine:p.Explore.machine ~workload:w ~scale ()
      in
      Alcotest.(check (float 0.))
        (p.Explore.tag ^ " total time identical")
        fresh.P.a_projection.Core.Analysis.Perf.total_time p.Explore.time;
      Alcotest.(check int)
        (p.Explore.tag ^ " same selection")
        (List.length fresh.P.a_selection.Core.Analysis.Hotspot.spots)
        (List.length
           p.Explore.outcome.P.Prepared.o_selection.Core.Analysis.Hotspot.spots))
    r.Explore.points

let test_parallel_matches_sequential () =
  let w = sord () in
  let scale = w.Registry.default_scale in
  let base = bgq () in
  let axes =
    [
      Designspace.Frequency [ 0.8; 1.6; 3.2 ];
      Designspace.Mem_bandwidth [ 7.; 14.; 28. ];
    ]
  in
  let pts = Explore.grid_points base axes in
  let prepared = P.Prepared.create ~workload:w ~scale () in
  let streamed = Atomic.make 0 in
  let seq = Explore.evaluate ~jobs:1 prepared pts in
  let par =
    Explore.evaluate ~jobs:4
      ~on_point:(fun _ -> Atomic.incr streamed)
      prepared pts
  in
  Alcotest.(check int) "on_point saw every point" 9 (Atomic.get streamed);
  Alcotest.(check (list string))
    "same order"
    (List.map (fun (p : Explore.point) -> p.Explore.tag) seq.Explore.points)
    (List.map (fun (p : Explore.point) -> p.Explore.tag) par.Explore.points);
  List.iter2
    (fun (a : Explore.point) (b : Explore.point) ->
      Alcotest.(check (float 0.)) "same time" a.Explore.time b.Explore.time)
    seq.Explore.points par.Explore.points;
  Alcotest.(check (list string))
    "same pareto"
    (List.map (fun (p : Explore.point) -> p.Explore.tag) seq.Explore.pareto)
    (List.map (fun (p : Explore.point) -> p.Explore.tag) par.Explore.pareto)

let test_explore_counters () =
  let w = sord () in
  let base = bgq () in
  let pts = Explore.grid_points base [ Designspace.Frequency [ 0.8; 1.6 ] ] in
  let prepared = P.Prepared.create ~workload:w ~scale:w.Registry.default_scale () in
  let before name =
    Option.value ~default:0. (List.assoc_opt name (Span.counters ()))
  in
  let pts_before = before "explore_points_evaluated" in
  let reuse_before = before "explore_bet_reuse_hits" in
  ignore (Explore.evaluate prepared pts);
  Alcotest.(check (float 0.))
    "points counter" (pts_before +. 2.)
    (before "explore_points_evaluated");
  Alcotest.(check (float 0.))
    "reuse counter" (reuse_before +. 2.)
    (before "explore_bet_reuse_hits")

(* --- pareto -------------------------------------------------------- *)

let test_pareto_hand_built () =
  (* (time, cost): b dominates c; a and b trade off. *)
  let items = [ ("a", (1., 3.)); ("b", (2., 1.)); ("c", (3., 2.)) ] in
  let frontier = Explore.pareto_by ~metrics:snd items in
  Alcotest.(check (list string))
    "dominated point dropped, sorted by time" [ "a"; "b" ]
    (List.map fst frontier);
  (* duplicates of a frontier metric all survive *)
  let dup = [ ("a", (1., 1.)); ("b", (1., 1.)) ] in
  Alcotest.(check int) "ties survive" 2
    (List.length (Explore.pareto_by ~metrics:snd dup));
  (* a single point is always the frontier *)
  Alcotest.(check int) "singleton" 1
    (List.length (Explore.pareto_by ~metrics:snd [ ("x", (5., 5.)) ]))

(* --- service surface ----------------------------------------------- *)

let points_of result =
  match Json.member "points" result with
  | Some (Json.List ps) -> ps
  | _ -> Alcotest.failf "no points in %s" (Json.to_string result)

let test_explore_matches_sweep () =
  (* A 1-axis explore must reproduce the sweep's points byte for
     byte, computed independently on fresh dispatchers. *)
  let sweep_resp =
    handle
      {|{"kind":"sweep","workload":"sord","machine":"bgq","axis":"bw","values":[7,14,28]}|}
  in
  let explore_resp =
    handle
      {|{"kind":"explore","workload":"sord","machine":"bgq","axes":[{"axis":"bw","values":[7,14,28]}]}|}
  in
  let sweep_pts = points_of (result_of sweep_resp) in
  let explore_pts = points_of (result_of explore_resp) in
  Alcotest.(check (list string))
    "points byte-identical"
    (List.map Json.to_string sweep_pts)
    (List.map Json.to_string explore_pts)

let test_explore_response_shape () =
  let dispatch = Service.Dispatch.create () in
  let resp =
    handle ~dispatch
      {|{"kind":"explore","workload":"sord","machine":"bgq","axes":[{"axis":"freq","values":[0.8,1.6]},{"axis":"bw","values":[7,28]}]}|}
  in
  let result = result_of resp in
  Alcotest.(check int) "4 points" 4 (List.length (points_of result));
  Alcotest.(check bool) "grid size" true
    (Json.member "grid" result = Some (Json.Int 4));
  (match Json.member "pareto" result with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.failf "missing pareto: %s" (Json.to_string result));
  (* every point's analysis carries the Tc/Tm/To split *)
  List.iter
    (fun pt ->
      match Option.bind (Json.member "analysis" pt) (Json.member "split") with
      | Some (Json.Obj fields) ->
        List.iter
          (fun k ->
            if not (List.mem_assoc k fields) then
              Alcotest.failf "split lacks %s" k)
          [ "tc_ms"; "tm_ms"; "to_ms" ]
      | _ -> Alcotest.failf "point lacks split: %s" (Json.to_string pt))
    (points_of result);
  (* a repeat of the same grid is fully served from the cache *)
  let v0 = Service.Metrics.view dispatch.Service.Dispatch.metrics in
  ignore
    (handle ~dispatch
       {|{"kind":"explore","workload":"sord","machine":"bgq","axes":[{"axis":"freq","values":[0.8,1.6]},{"axis":"bw","values":[7,28]}]}|});
  let v1 = Service.Metrics.view dispatch.Service.Dispatch.metrics in
  Alcotest.(check int) "all cache hits" 4
    (v1.Service.Metrics.cache_hits - v0.Service.Metrics.cache_hits);
  Alcotest.(check int) "no new misses" 0
    (v1.Service.Metrics.cache_misses - v0.Service.Metrics.cache_misses)

let test_explore_sampled () =
  let resp =
    handle
      {|{"kind":"explore","workload":"sord","machine":"bgq","axes":[{"axis":"freq","values":[0.8,1.6,3.2]},{"axis":"bw","values":[7,14,28]}],"sample":4,"seed":9}|}
  in
  let result = result_of resp in
  Alcotest.(check bool) "at most 4 points" true
    (List.length (points_of result) <= 4);
  Alcotest.(check bool) "echoes sample" true
    (Json.member "sample" result = Some (Json.Int 4))

let test_explore_validation () =
  let code body = fst (error_of (handle body)) in
  Alcotest.(check string) "missing axes" "invalid_request"
    (code {|{"kind":"explore","workload":"sord","machine":"bgq"}|});
  Alcotest.(check string) "empty axes" "invalid_request"
    (code {|{"kind":"explore","workload":"sord","machine":"bgq","axes":[]}|});
  Alcotest.(check string) "duplicate axis" "invalid_request"
    (code
       {|{"kind":"explore","workload":"sord","machine":"bgq","axes":[{"axis":"bw","values":[1]},{"axis":"bw","values":[2]}]}|});
  Alcotest.(check string) "unknown axis key" "invalid_request"
    (code
       {|{"kind":"explore","workload":"sord","machine":"bgq","axes":[{"axis":"warp","values":[1]}]}|});
  (* 65^3 > 4096 points without sampling *)
  let values =
    String.concat "," (List.init 65 (fun i -> string_of_int (i + 1)))
  in
  let big =
    Printf.sprintf
      {|{"kind":"explore","workload":"sord","machine":"bgq","axes":[{"axis":"bw","values":[%s]},{"axis":"lat","values":[%s]},{"axis":"freq","values":[%s]}]}|}
      values values values
  in
  Alcotest.(check string) "grid too large" "invalid_request" (code big)

let test_explore_deadline_partial () =
  (* A deadline expiring mid-grid aborts with a partial-progress
     error, not a hang and not an ok response.  The 16x16x16 grid
     cannot finish inside 30 ms (the shared BET alone takes longer to
     prepare), while request parsing comfortably does. *)
  let values =
    String.concat "," (List.init 16 (fun i -> string_of_int (i + 1)))
  in
  let body =
    Printf.sprintf
      {|{"kind":"explore","workload":"sord","machine":"bgq","axes":[{"axis":"bw","values":[%s]},{"axis":"lat","values":[%s]},{"axis":"freq","values":[%s]}],"timeout_ms":30}|}
      values values values
  in
  let code, msg = error_of (handle body) in
  Alcotest.(check string) "deadline code" "deadline_exceeded" code;
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) ("progress in message: " ^ msg) true
    (contains msg "of 4096 points")

(* --- capabilities and versioning ----------------------------------- *)

let test_capabilities () =
  let result = result_of (handle {|{"kind":"capabilities"}|}) in
  Alcotest.(check bool) "protocol version" true
    (Json.member "protocol" result
    = Some (Json.Int Service.Protocol.protocol_version));
  let strings key =
    match Json.member key result with
    | Some (Json.List l) ->
      List.filter_map (function Json.String s -> Some s | _ -> None) l
    | _ -> Alcotest.failf "capabilities lack %s" key
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) ("kind " ^ k) true (List.mem k (strings "kinds")))
    [ "analyze"; "sweep"; "explore"; "lint"; "capabilities" ];
  Alcotest.(check (list string)) "axes advertised" Designspace.axis_keys
    (strings "axes")

let test_version_stamp () =
  (* every response, ok or error, carries the protocol version *)
  List.iter
    (fun body ->
      let r = Result.get_ok (Json.of_string (handle body)) in
      Alcotest.(check bool)
        ("v stamp on " ^ body)
        true
        (Json.member "v" r
        = Some (Json.Int Service.Protocol.protocol_version)))
    [ {|{"kind":"version"}|}; {|{"kind":"nope"}|}; "{" ]

(* --- typed request builders ---------------------------------------- *)

let parse_ok body =
  match Service.Protocol.parse_request body with
  | Ok (req, envelope) -> (req, envelope.Service.Protocol.timeout_ms)
  | Error (_, msg) -> Alcotest.failf "parse of %s failed: %s" body msg

let test_service_api_roundtrip () =
  let module A = Service.Service_api in
  (* analyze with options and overrides *)
  let body =
    A.to_body ~timeout_ms:250.
      (A.analyze
         ~opts:
           {
             A.default_query_opts with
             A.scale = Some 2.;
             overrides = [ ("mem_bw_gbs", 50.) ];
           }
         ~workload:"sord" ~machine:"bgq" ())
  in
  (match parse_ok body with
  | Service.Protocol.Analyze q, Some 250. ->
    Alcotest.(check string) "workload" "sord" q.Service.Protocol.workload;
    Alcotest.(check (float 0.)) "scale" 2.
      (Option.get q.Service.Protocol.scale);
    Alcotest.(check bool) "override" true
      (q.Service.Protocol.overrides = [ ("mem_bw_gbs", 50.) ])
  | _ -> Alcotest.fail "analyze did not round trip");
  (* sweep *)
  (match
     parse_ok
       (A.to_body
          (A.sweep ~workload:"sord" ~machine:"bgq" ~axis:"bw"
             ~values:[ 1.; 2. ] ()))
   with
  | Service.Protocol.Sweep (_, Designspace.Mem_bandwidth [ 1.; 2. ]), None -> ()
  | _ -> Alcotest.fail "sweep did not round trip");
  (* explore *)
  (match
     parse_ok
       (A.to_body
          (A.explore ~sample:5 ~seed:3 ~workload:"sord" ~machine:"bgq"
             ~axes:[ ("bw", [ 1.; 2. ]); ("vec", [ 4.; 8. ]) ] ()))
   with
  | Service.Protocol.Explore (_, spec), None ->
    Alcotest.(check int) "two axes" 2
      (List.length spec.Service.Protocol.e_axes);
    Alcotest.(check bool) "sample" true
      (spec.Service.Protocol.e_sample = Some 5);
    Alcotest.(check int) "seed" 3 spec.Service.Protocol.e_seed
  | _ -> Alcotest.fail "explore did not round trip");
  (* lint, catalog kinds *)
  (match parse_ok (A.to_body (A.lint_workload ~deny_warnings:true "sord")) with
  | Service.Protocol.Lint q, None ->
    Alcotest.(check bool) "deny" true q.Service.Protocol.l_deny_warnings
  | _ -> Alcotest.fail "lint did not round trip");
  List.iter
    (fun (req, expected) ->
      Alcotest.(check string)
        ("kind " ^ expected)
        expected
        (Service.Protocol.kind_label (fst (parse_ok (A.to_body req)))))
    [
      (A.Workloads, "workloads");
      (A.Machines, "machines");
      (A.Stats, "stats");
      (A.Metrics_prom, "metrics_prom");
      (A.Version, "version");
      (A.Capabilities, "capabilities");
    ]

let test_service_api_through_dispatch () =
  let module A = Service.Service_api in
  let body =
    A.to_body
      (A.explore ~workload:"sord" ~machine:"bgq"
         ~axes:[ ("freq", [ 0.8; 1.6 ]) ] ())
  in
  let result = result_of (handle body) in
  Alcotest.(check int) "two points" 2 (List.length (points_of result))

let suite =
  [
    ( "explore.grid",
      [
        Alcotest.test_case "cartesian shape" `Quick test_grid_shape;
        Alcotest.test_case "sampling deterministic" `Quick
          test_sample_deterministic;
      ] );
    ( "explore.engine",
      [
        Alcotest.test_case "reuse equivalence" `Quick test_reuse_equivalence;
        Alcotest.test_case "parallel matches sequential" `Quick
          test_parallel_matches_sequential;
        Alcotest.test_case "counters" `Quick test_explore_counters;
        Alcotest.test_case "pareto" `Quick test_pareto_hand_built;
      ] );
    ( "explore.service",
      [
        Alcotest.test_case "matches sweep byte-for-byte" `Quick
          test_explore_matches_sweep;
        Alcotest.test_case "response shape and cache" `Quick
          test_explore_response_shape;
        Alcotest.test_case "sampled grid" `Quick test_explore_sampled;
        Alcotest.test_case "validation" `Quick test_explore_validation;
        Alcotest.test_case "deadline is partial error" `Quick
          test_explore_deadline_partial;
      ] );
    ( "explore.protocol",
      [
        Alcotest.test_case "capabilities" `Quick test_capabilities;
        Alcotest.test_case "version stamp" `Quick test_version_stamp;
        Alcotest.test_case "service_api round trip" `Quick
          test_service_api_roundtrip;
        Alcotest.test_case "service_api through dispatch" `Quick
          test_service_api_through_dispatch;
      ] );
  ]
