(* Tests for the service layer: the JSON parser round trip, the
   skoped protocol (through Dispatch, no sockets needed), the
   projection cache, and the small concurrent primitives. *)

module Json = Core.Report.Json
module Service = Skope_service

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- Json.of_string ------------------------------------------------ *)

let json = Alcotest.testable (Fmt.of_to_string Json.to_string) ( = )

let parse_ok s =
  match Json.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let parse_err s =
  match Json.of_string s with
  | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
  | Error e -> e

let test_parse_scalars () =
  Alcotest.check json "null" Json.Null (parse_ok "null");
  Alcotest.check json "true" (Json.Bool true) (parse_ok " true ");
  Alcotest.check json "int" (Json.Int (-42)) (parse_ok "-42");
  Alcotest.check json "float" (Json.Float 2.5) (parse_ok "2.5");
  Alcotest.check json "exponent" (Json.Float 1500.) (parse_ok "1.5e3");
  Alcotest.check json "huge literal is infinite" (Json.Float infinity)
    (parse_ok "1e999");
  Alcotest.check json "zero" (Json.Int 0) (parse_ok "0")

let test_parse_structures () =
  Alcotest.check json "empty array" (Json.List []) (parse_ok "[]");
  Alcotest.check json "empty object" (Json.Obj []) (parse_ok "{ }");
  Alcotest.check json "nested"
    (Json.Obj
       [
         ("a", Json.List [ Json.Int 1; Json.Null ]);
         ("b", Json.Obj [ ("c", Json.Bool false) ]);
       ])
    (parse_ok {|{"a": [1, null], "b": {"c": false}}|})

let test_parse_string_escapes () =
  Alcotest.check json "basic escapes"
    (Json.String "a\"b\\c\nd\te")
    (parse_ok {|"a\"b\\c\nd\te"|});
  Alcotest.check json "solidus" (Json.String "/") (parse_ok {|"\/"|});
  Alcotest.check json "unicode escape" (Json.String "\xc3\xa9")
    (parse_ok {|"\u00e9"|});
  Alcotest.check json "control escape" (Json.String "\x01")
    (parse_ok {|"\u0001"|});
  (* surrogate pair: U+1D11E (musical G clef) in UTF-8 *)
  Alcotest.check json "surrogate pair"
    (Json.String "\xf0\x9d\x84\x9e")
    (parse_ok {|"\ud834\udd1e"|})

let test_parse_errors () =
  List.iter
    (fun s -> ignore (parse_err s))
    [
      "";
      "nul";
      "{";
      "[1,]";
      "{\"a\":}";
      "{\"a\" 1}";
      "\"unterminated";
      "\"bad \\x escape\"";
      "\"unpaired \\ud834\"";
      "01";
      "1.";
      "+1";
      "[1] trailing";
      "\"ctrl \x01 raw\"";
    ];
  (* error messages carry a byte offset *)
  Alcotest.(check bool) "offset in message" true
    (String.length (parse_err "[1,]") > 0
    && String.sub (parse_err "[1,]") 0 4 = "byte")

(* Round trip: any emitted tree (NaN-free — NaN serializes as null by
   design) parses back to an equal tree. *)
let gen_json : Json.t QCheck.Gen.t =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.Float f)
          (oneof [ float; return infinity; return neg_infinity ]);
        map (fun s -> Json.String s) string_printable;
        map (fun s -> Json.String s) string;
      ]
  in
  sized @@ fix (fun self n ->
      if n <= 0 then scalar
      else
        oneof
          [
            scalar;
            map (fun l -> Json.List l) (list_size (0 -- 4) (self (n / 2)));
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (0 -- 4)
                 (pair string_printable (self (n / 2))));
          ])

let prop_roundtrip =
  QCheck.Test.make ~name:"emit/parse round trip" ~count:500
    (QCheck.make ~print:Json.to_string gen_json)
    (fun t ->
      match Json.of_string (Json.to_string t) with
      | Ok t' -> t = t'
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e)

(* --- protocol / dispatch ------------------------------------------- *)

let handle ?received_at ?(dispatch = Service.Dispatch.create ()) body =
  Service.Dispatch.handle ?received_at dispatch body

let error_code response =
  match Json.of_string response with
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e response
  | Ok r -> (
    match Json.member "ok" r with
    | Some (Json.Bool true) -> Alcotest.failf "expected error: %s" response
    | _ -> (
      match Option.bind (Json.member "error" r) (Json.member "code") with
      | Some (Json.String c) -> c
      | _ -> Alcotest.failf "error without code: %s" response))

let is_ok response =
  match Json.of_string response with
  | Ok r -> Json.member "ok" r = Some (Json.Bool true)
  | Error _ -> false

let check_error name expected body =
  Alcotest.(check string) name expected (error_code (handle body))

let test_protocol_errors () =
  check_error "malformed JSON" "parse_error" "{\"kind\":";
  check_error "not an object" "invalid_request" "[1,2]";
  check_error "missing kind" "invalid_request" "{}";
  check_error "unknown kind" "invalid_request" {|{"kind":"frobnicate"}|};
  check_error "unknown workload" "unknown_workload"
    {|{"kind":"analyze","workload":"nope","machine":"bgq"}|};
  check_error "unknown machine" "unknown_machine"
    {|{"kind":"analyze","workload":"sord","machine":"cray"}|};
  check_error "bad coverage" "invalid_request"
    {|{"kind":"analyze","workload":"sord","machine":"bgq","coverage":2.0}|};
  check_error "bad scale" "invalid_request"
    {|{"kind":"analyze","workload":"sord","machine":"bgq","scale":-1}|};
  check_error "bad axis" "invalid_request"
    {|{"kind":"sweep","workload":"sord","machine":"bgq","axis":"warp","values":[1]}|};
  check_error "empty sweep" "invalid_request"
    {|{"kind":"sweep","workload":"sord","machine":"bgq","axis":"bw","values":[]}|};
  check_error "unknown override" "invalid_request"
    {|{"kind":"analyze","workload":"sord","machine":"bgq","overrides":{"warp_speed":9}}|};
  check_error "bad timeout" "invalid_request"
    {|{"kind":"analyze","workload":"sord","machine":"bgq","timeout_ms":0}|}

let test_oversized () =
  let dispatch =
    Service.Dispatch.create
      ~config:{ Service.Dispatch.max_request_bytes = 64; cache_capacity = 4 }
      ()
  in
  let body =
    Printf.sprintf {|{"kind":"stats","pad":%S}|} (String.make 200 'x')
  in
  Alcotest.(check string) "oversized" "oversized"
    (error_code (handle ~dispatch body));
  Alcotest.(check bool) "small body still fine" true
    (is_ok (handle ~dispatch {|{"kind":"stats"}|}))

let test_deadline_exceeded () =
  let body =
    {|{"kind":"analyze","workload":"pedagogical","machine":"bgq","timeout_ms":5}|}
  in
  let stale = Unix.gettimeofday () -. 1.0 in
  Alcotest.(check string) "deadline" "deadline_exceeded"
    (error_code (handle ~received_at:stale body));
  (* a generous deadline passes *)
  Alcotest.(check bool) "fresh deadline ok" true
    (is_ok
       (handle
          {|{"kind":"analyze","workload":"pedagogical","machine":"bgq","timeout_ms":60000}|}))

let test_catalogs_and_stats () =
  Alcotest.(check bool) "workloads" true (is_ok (handle {|{"kind":"workloads"}|}));
  Alcotest.(check bool) "machines" true (is_ok (handle {|{"kind":"machines"}|}));
  let dispatch = Service.Dispatch.create () in
  let resp = handle ~dispatch {|{"kind":"stats"}|} in
  Alcotest.(check bool) "stats ok" true (is_ok resp);
  let v = Service.Metrics.view dispatch.Service.Dispatch.metrics in
  Alcotest.(check int) "stats counted" 1 v.Service.Metrics.total_requests

let test_worker_never_crashes () =
  (* A grab bag of hostile bodies must all produce JSON envelopes. *)
  let dispatch = Service.Dispatch.create () in
  List.iter
    (fun body ->
      let resp = handle ~dispatch body in
      match Json.of_string resp with
      | Ok (Json.Obj fields) ->
        Alcotest.(check bool) "has ok field" true (List.mem_assoc "ok" fields)
      | Ok _ | Error _ -> Alcotest.failf "bad envelope for %S: %s" body resp)
    [
      "";
      "\x00\x01\x02";
      "{\"kind\":\"analyze\"}";
      "{\"kind\":123}";
      "[{}]";
      "{\"kind\":\"sweep\",\"workload\":\"sord\",\"machine\":\"bgq\",\"axis\":\"bw\",\"values\":[1e999]}";
      String.concat "" (List.init 100 (fun _ -> "["));
      {|{"kind":"analyze","workload":"sord","machine":"bgq","top":0}|};
    ]

(* --- lint requests -------------------------------------------------- *)

let result_of resp =
  match Json.of_string resp with
  | Ok j -> (
    match Json.member "result" j with
    | Some r -> r
    | None -> Alcotest.failf "no result in %s" resp)
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e resp

let test_lint_workload () =
  let dispatch = Service.Dispatch.create () in
  let r = result_of (handle ~dispatch {|{"kind":"lint","workload":"sord"}|}) in
  Alcotest.(check bool) "sord is clean" true
    (Json.member "clean" r = Some (Json.Bool true));
  Alcotest.(check bool) "no errors" true
    (Json.member "errors" r = Some (Json.Int 0));
  (match Json.member "diagnostics" r with
  | Some (Json.List _) -> ()
  | _ -> Alcotest.fail "diagnostics is not a list");
  (* lint requests are counted in the metrics like analyze/sweep *)
  let v = Service.Metrics.view dispatch.Service.Dispatch.metrics in
  Alcotest.(check int) "lint counted by kind" 1
    (try List.assoc ("lint", "ok") v.Service.Metrics.requests
     with Not_found -> 0)

let test_lint_source () =
  (* An inline source with a certain division by zero: the response is
     still ok:true (the lint ran), but not clean. *)
  let body =
    Json.to_string
      (Json.Obj
         [
           ("kind", Json.String "lint");
           ( "source",
             Json.String
               "program p\ndef main()\n{\n  let z = 2 - 2\n  comp flops=1/z\n}\n"
           );
         ])
  in
  let r = result_of (handle body) in
  Alcotest.(check bool) "not clean" true
    (Json.member "clean" r = Some (Json.Bool false));
  (match Json.member "diagnostics" r with
  | Some (Json.List (d :: _)) ->
    Alcotest.(check bool) "carries the L002 code" true
      (Json.member "code" d = Some (Json.String "L002"))
  | _ -> Alcotest.fail "expected at least one diagnostic");
  (* A syntax error also arrives as a diagnostic, not an envelope
     error. *)
  let r =
    result_of
      (handle {|{"kind":"lint","source":"program p\ndef main( {"}|})
  in
  Alcotest.(check bool) "syntax errors are diagnostics" true
    (match Json.member "diagnostics" r with
    | Some (Json.List [ d ]) ->
      Json.member "code" d = Some (Json.String "P002")
    | _ -> false)

let test_lint_request_validation () =
  check_error "lint without target" "invalid_request" {|{"kind":"lint"}|};
  check_error "lint with both targets" "invalid_request"
    {|{"kind":"lint","workload":"sord","source":"program p"}|};
  check_error "lint unknown workload" "unknown_workload"
    {|{"kind":"lint","workload":"nope"}|};
  check_error "lint bad scale" "invalid_request"
    {|{"kind":"lint","workload":"sord","scale":0}|};
  check_error "lint bad disable list" "invalid_request"
    {|{"kind":"lint","workload":"sord","disable":[1]}|};
  (* deny_warnings only flips the clean verdict (infos never fail) *)
  let r =
    result_of
      (handle {|{"kind":"lint","workload":"sord","deny_warnings":true}|})
  in
  Alcotest.(check bool) "clean under deny_warnings" true
    (Json.member "clean" r = Some (Json.Bool true))

(* --- cache behaviour ----------------------------------------------- *)

(* A fixed trace id keeps repeated responses byte-identical: the
   dispatcher adopts the caller's id instead of minting a fresh one. *)
let analyze_body =
  {|{"kind":"analyze","workload":"pedagogical","machine":"bgq","top":5,"trace":{"id":"t-cache"}}|}

let sweep_body =
  {|{"kind":"sweep","workload":"pedagogical","machine":"bgq","axis":"bw","values":[1,2,4],"trace":{"id":"t-sweep"}}|}

let view d = Service.Metrics.view d.Service.Dispatch.metrics

let test_analyze_cache_hit () =
  let dispatch = Service.Dispatch.create () in
  let r1 = handle ~dispatch analyze_body in
  let v1 = view dispatch in
  Alcotest.(check int) "first is a miss" 1 v1.Service.Metrics.cache_misses;
  Alcotest.(check int) "no hit yet" 0 v1.Service.Metrics.cache_hits;
  let r2 = handle ~dispatch analyze_body in
  let v2 = view dispatch in
  Alcotest.(check string) "byte-identical responses" r1 r2;
  Alcotest.(check int) "second is a hit" 1 v2.Service.Metrics.cache_hits;
  Alcotest.(check int) "no new miss" 1 v2.Service.Metrics.cache_misses

let test_sweep_cache () =
  let dispatch = Service.Dispatch.create () in
  let r1 = handle ~dispatch sweep_body in
  let v1 = view dispatch in
  Alcotest.(check bool) "sweep ok" true (is_ok r1);
  Alcotest.(check int) "one miss per point" 3 v1.Service.Metrics.cache_misses;
  let r2 = handle ~dispatch sweep_body in
  let v2 = view dispatch in
  Alcotest.(check string) "re-sweep byte-identical" r1 r2;
  Alcotest.(check int) "re-sweep fully cache-served" 3
    v2.Service.Metrics.cache_hits;
  Alcotest.(check int) "re-sweep adds no misses" 3
    v2.Service.Metrics.cache_misses

let test_override_shares_sweep_slot () =
  (* A sweep point and an equivalent parameter-override analyze have
     the same fingerprint, so the second is served from the first's
     cache slot. *)
  let dispatch = Service.Dispatch.create () in
  ignore (handle ~dispatch sweep_body);
  let misses_after_sweep = (view dispatch).Service.Metrics.cache_misses in
  let resp =
    handle ~dispatch
      {|{"kind":"analyze","workload":"pedagogical","machine":"bgq","overrides":{"mem_bw_gbs":2.0}}|}
  in
  Alcotest.(check bool) "override analyze ok" true (is_ok resp);
  let v = view dispatch in
  Alcotest.(check int) "no recompute" misses_after_sweep
    v.Service.Metrics.cache_misses;
  Alcotest.(check int) "served from sweep's slot" 1 v.Service.Metrics.cache_hits

let test_different_queries_different_results () =
  let dispatch = Service.Dispatch.create () in
  let r1 = handle ~dispatch analyze_body in
  let r2 =
    handle ~dispatch
      {|{"kind":"analyze","workload":"pedagogical","machine":"bgq","top":5,"overrides":{"mem_bw_gbs":0.5}}|}
  in
  Alcotest.(check bool) "distinct machines, distinct responses" true (r1 <> r2);
  let v = view dispatch in
  Alcotest.(check int) "both computed" 2 v.Service.Metrics.cache_misses

(* --- fingerprint --------------------------------------------------- *)

let fp ?(scale = 1.0) ?(bw = 28.5) ?(engine = "tree") () =
  let machine = { Core.Hw.Machines.bgq with Core.Hw.Machine.mem_bw_gbs = bw } in
  Service.Fingerprint.of_query ~workload:"sord" ~machine ~scale
    ~criteria:Core.Analysis.Hotspot.default_criteria ~top:10 ~engine

let test_fingerprint () =
  Alcotest.(check string) "deterministic" (fp ()) (fp ());
  Alcotest.(check bool) "scale matters" true (fp () <> fp ~scale:2.0 ());
  Alcotest.(check bool) "machine parameter matters" true
    (fp () <> fp ~bw:28.6 ());
  Alcotest.(check bool) "engine matters" true (fp () <> fp ~engine:"arena" ());
  Alcotest.(check int) "hex digest" 32 (String.length (fp ()))

(* --- lru ----------------------------------------------------------- *)

let test_lru_eviction () =
  let c = Service.Lru.create ~capacity:2 in
  Service.Lru.add c "a" 1;
  Service.Lru.add c "b" 2;
  ignore (Service.Lru.find c "a");
  (* "a" is now MRU, so adding "c" evicts "b" *)
  Service.Lru.add c "c" 3;
  Alcotest.(check (list string)) "recency order" [ "c"; "a" ]
    (Service.Lru.keys c);
  Alcotest.(check bool) "b evicted" false (Service.Lru.mem c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Service.Lru.find c "a");
  Service.Lru.add c "a" 10;
  Alcotest.(check (option int)) "replace updates" (Some 10)
    (Service.Lru.find c "a");
  Alcotest.(check int) "replace keeps length" 2 (Service.Lru.length c);
  Service.Lru.clear c;
  Alcotest.(check int) "clear empties" 0 (Service.Lru.length c)

(* --- metrics ------------------------------------------------------- *)

let test_metrics_percentiles () =
  let m = Service.Metrics.create () in
  for i = 1 to 100 do
    Service.Metrics.observe_latency m (float_of_int i /. 1e3)
  done;
  let v = Service.Metrics.view m in
  Alcotest.(check (float 1e-9)) "p50" 0.050 v.Service.Metrics.p50;
  Alcotest.(check (float 1e-9)) "p95" 0.095 v.Service.Metrics.p95;
  Alcotest.(check (float 1e-9)) "p99" 0.099 v.Service.Metrics.p99;
  Alcotest.(check int) "count" 100 v.Service.Metrics.latency_count

let test_metrics_counters () =
  let m = Service.Metrics.create () in
  Service.Metrics.incr_request m ~kind:"analyze" ~outcome:"ok";
  Service.Metrics.incr_request m ~kind:"analyze" ~outcome:"ok";
  Service.Metrics.incr_request m ~kind:"sweep" ~outcome:"deadline_exceeded";
  Service.Metrics.cache_hit m;
  Service.Metrics.cache_hit m;
  Service.Metrics.cache_hit m;
  Service.Metrics.cache_miss m;
  let v = Service.Metrics.view m in
  Alcotest.(check int) "total" 3 v.Service.Metrics.total_requests;
  Alcotest.(check (float 1e-9)) "hit rate" 0.75 v.Service.Metrics.hit_rate;
  Alcotest.(check int) "by kind/outcome" 2
    (List.assoc ("analyze", "ok") v.Service.Metrics.requests)

(* --- workqueue ----------------------------------------------------- *)

let test_workqueue_fifo () =
  let q = Service.Workqueue.create ~capacity:3 in
  Alcotest.(check bool) "push 1" true (Service.Workqueue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Service.Workqueue.try_push q 2);
  Alcotest.(check bool) "push 3" true (Service.Workqueue.try_push q 3);
  Alcotest.(check bool) "bounded" false (Service.Workqueue.try_push q 4);
  Alcotest.(check int) "fifo 1" 1 (Service.Workqueue.pop q);
  Alcotest.(check int) "fifo 2" 2 (Service.Workqueue.pop q);
  Alcotest.(check bool) "room again" true (Service.Workqueue.try_push q 5);
  Alcotest.(check int) "fifo 3" 3 (Service.Workqueue.pop q);
  Alcotest.(check int) "fifo 5" 5 (Service.Workqueue.pop q);
  Alcotest.(check int) "empty" 0 (Service.Workqueue.length q)

let test_workqueue_threads () =
  (* One producer, one consumer, values arrive exactly once in order. *)
  let q = Service.Workqueue.create ~capacity:4 in
  let n = 200 in
  let received = ref [] in
  let consumer =
    Thread.create
      (fun () ->
        for _ = 1 to n do
          received := Service.Workqueue.pop q :: !received
        done)
      ()
  in
  for i = 1 to n do
    Service.Workqueue.push q i
  done;
  Thread.join consumer;
  Alcotest.(check (list int)) "all values in order" (List.init n (fun i -> i + 1))
    (List.rev !received)

(* --- reliability: faults, backoff, and real sockets ---------------- *)

module Faults = Service.Faults
module Client = Service.Client
module Server = Service.Server

let test_faults_spec () =
  (match Faults.spec_of_string "drop=0.3,delay_p=0.2,delay_ms=50,overload=0.1" with
  | Error e -> Alcotest.failf "spec rejected: %s" e
  | Ok s ->
    Alcotest.(check (float 1e-9)) "drop" 0.3 s.Faults.drop;
    Alcotest.(check (float 1e-9)) "overload" 0.1 s.Faults.overload;
    Alcotest.(check (float 1e-9)) "truncate" 0. s.Faults.truncate;
    Alcotest.(check (float 1e-9)) "delay_p" 0.2 s.Faults.delay_p;
    Alcotest.(check (float 1e-9)) "delay_ms" 50. s.Faults.delay_ms);
  let rejected spec =
    match Faults.spec_of_string spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "spec %S unexpectedly accepted" spec
  in
  rejected "drop=1.5";
  rejected "drop=-0.1";
  rejected "drop=abc";
  rejected "unknown_key=0.5";
  rejected "delay_ms=-5";
  (* round trip through the printer *)
  let s = { Faults.drop = 0.25; overload = 0.; truncate = 0.5; delay_p = 1.;
            delay_ms = 10. } in
  Alcotest.(check bool) "spec_to_string round trips" true
    (Faults.spec_of_string (Faults.spec_to_string s) = Ok s)

let test_faults_determinism () =
  let spec =
    { Faults.drop = 0.3; overload = 0.2; truncate = 0.1; delay_p = 0.5;
      delay_ms = 10. }
  in
  let stream seed =
    let t = Faults.create ~seed spec in
    List.init 200 (fun _ -> Faults.decide t)
  in
  Alcotest.(check bool) "same seed, same stream" true
    (stream 42 = stream 42);
  Alcotest.(check bool) "different seed, different stream" true
    (stream 42 <> stream 43);
  (* the stream actually exercises every enabled class *)
  let ds = stream 42 in
  Alcotest.(check bool) "some drops" true
    (List.exists (fun d -> d.Faults.d_drop) ds);
  Alcotest.(check bool) "some clean" true
    (List.exists (fun d -> Faults.injected d = 0) ds)

let test_backoff_deterministic () =
  let retry = { Client.default_retry with base_ms = 100.; max_ms = 1000. } in
  for k = 0 to 9 do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "retry %d reproducible" k)
      (Client.backoff_ms retry k) (Client.backoff_ms retry k);
    let step = Float.min retry.Client.max_ms (100. *. (2. ** float_of_int k)) in
    let b = Client.backoff_ms retry k in
    Alcotest.(check bool)
      (Printf.sprintf "retry %d within [step/2, step]" k)
      true
      (b >= (step /. 2.) -. 1e-9 && b <= step +. 1e-9)
  done;
  (* the cap is a hard ceiling even far down the schedule *)
  Alcotest.(check bool) "capped" true (Client.backoff_ms retry 40 <= 1000.);
  (* different seeds decorrelate the jitter *)
  Alcotest.(check bool) "seed changes jitter" true
    (Client.backoff_ms retry 0
    <> Client.backoff_ms { retry with seed = retry.Client.seed + 1 } 0)

let test_parse_overloaded_response () =
  let body =
    Service.Protocol.error_response ~retry_after_ms:75.
      Service.Protocol.Overloaded "queue full"
  in
  match Service.Service_api.parse_response body with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok r ->
    Alcotest.(check bool) "not ok" false r.Service.Service_api.r_ok;
    Alcotest.(check (option string)) "code" (Some "overloaded")
      r.Service.Service_api.r_error_code;
    Alcotest.(check (option (float 1e-9))) "hint" (Some 75.)
      r.Service.Service_api.r_retry_after_ms

(* Run a real server on an ephemeral port for the duration of [f].
   The [stop] flag (not a signal) ends the accept loop so the server
   drains and joins deterministically inside the test process. *)
let with_server ?faults ?(pool = 2) ?(queue = 8) f =
  let stop = Atomic.make false in
  let port = ref 0 in
  let config =
    {
      Server.default_config with
      port = 0;
      pool;
      queue_capacity = queue;
      faults;
      dispatch =
        { Service.Dispatch.default_config with cache_capacity = 64 };
    }
  in
  let server =
    Thread.create
      (fun () -> Server.run ~stop ~on_ready:(fun p -> port := p) config)
      ()
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while !port = 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  if !port = 0 then Alcotest.fail "server did not come up";
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join server)
    (fun () -> f !port)

let version_body = Service.Service_api.to_body Service.Service_api.Version

let test_server_roundtrip_and_drain () =
  (* In-flight requests finish during graceful shutdown: start a
     delayed request, stop the server while it is being served, and
     the response must still arrive complete. *)
  let faults =
    Faults.create ~seed:1
      { Faults.no_faults with delay_p = 1.; delay_ms = 300. }
  in
  let result = ref (Error (Client.Protocol "never ran")) in
  with_server ~faults ~pool:1 (fun port ->
      let t =
        Thread.create
          (fun () ->
            result := Client.roundtrip ~host:"127.0.0.1" ~port version_body)
          ()
      in
      Thread.delay 0.1;
      (* exiting [with_server] now sets [stop] while the request is
         still sleeping in the worker *)
      ignore t);
  (* server has joined: the delayed request must have completed *)
  Thread.delay 0.1;
  match !result with
  | Ok response ->
    Alcotest.(check bool) "response is ok:true" true
      (match Json.of_string response with
      | Ok r -> Json.member "ok" r = Some (Json.Bool true)
      | Error _ -> false)
  | Error e -> Alcotest.failf "drained request failed: %a" Client.pp_error e

let test_server_sheds_when_saturated () =
  (* pool=1, queue=1, every response delayed 400 ms: one request pins
     the worker, one fills the queue, and the third must come back as
     a structured overloaded error immediately — not after a delay. *)
  let faults =
    Faults.create ~seed:1
      { Faults.no_faults with delay_p = 1.; delay_ms = 400. }
  in
  with_server ~faults ~pool:1 ~queue:1 (fun port ->
      let fire () =
        Thread.create
          (fun () ->
            ignore (Client.roundtrip ~host:"127.0.0.1" ~port version_body))
          ()
      in
      let a = fire () in
      Thread.delay 0.1;
      let b = fire () in
      Thread.delay 0.1;
      let t0 = Unix.gettimeofday () in
      (match
         Client.request ~retry:Client.no_retry ~host:"127.0.0.1" ~port
           version_body
       with
      | Error (Client.Overloaded { retry_after_ms; _ }) ->
        Alcotest.(check bool) "shed response is immediate" true
          (Unix.gettimeofday () -. t0 < 0.1);
        Alcotest.(check bool) "carries a retry hint" true
          (retry_after_ms <> None)
      | Error e -> Alcotest.failf "expected overloaded, got %a" Client.pp_error e
      | Ok _ -> Alcotest.fail "expected overloaded, got a response");
      Thread.join a;
      Thread.join b)

let test_client_times_out_on_slow_server () =
  let faults =
    Faults.create ~seed:1
      { Faults.no_faults with delay_p = 1.; delay_ms = 1500. }
  in
  with_server ~faults ~pool:1 (fun port ->
      let timeouts =
        { Client.default_timeouts with read_s = 0.2 }
      in
      match
        Client.request ~timeouts ~retry:Client.no_retry ~host:"127.0.0.1"
          ~port version_body
      with
      | Error (Client.Timeout _) -> ()
      | Error e -> Alcotest.failf "expected timeout, got %a" Client.pp_error e
      | Ok _ -> Alcotest.fail "expected timeout, got a response")

let test_client_detects_truncation () =
  let faults =
    Faults.create ~seed:1 { Faults.no_faults with truncate = 1. }
  in
  with_server ~faults ~pool:1 (fun port ->
      match
        Client.request ~retry:Client.no_retry ~host:"127.0.0.1" ~port
          version_body
      with
      | Error (Client.Protocol msg) ->
        Alcotest.(check bool) "mentions truncation" true
          (let lower = String.lowercase_ascii msg in
           String.length lower >= 9 && String.sub lower 0 9 = "truncated")
      | Error e ->
        Alcotest.failf "expected protocol error, got %a" Client.pp_error e
      | Ok _ -> Alcotest.fail "expected protocol error, got a response")

let test_client_refused_is_structured () =
  (* A freshly bound-then-closed ephemeral port is not listening:
     connect must come back as a structured Refused, not a timeout or
     an opaque string. *)
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "no port"
  in
  Unix.close sock;
  match
    Client.request ~retry:Client.no_retry ~host:"127.0.0.1" ~port version_body
  with
  | Error (Client.Refused _) -> ()
  | Error e -> Alcotest.failf "expected refused, got %a" Client.pp_error e
  | Ok _ -> Alcotest.fail "expected refused, got a response"

let test_retries_ride_through_drops () =
  (* 30% connection drops under a fixed fault seed: every one of 50
     sequential requests must still succeed through the retry loop,
     and the drops must actually have forced retries. *)
  let faults =
    Faults.create ~seed:7 { Faults.no_faults with drop = 0.3 }
  in
  with_server ~faults ~pool:2 (fun port ->
      let retries = ref 0 in
      let on_retry _ _ = incr retries in
      for i = 1 to 50 do
        let retry =
          { Client.attempts = 6; base_ms = 5.; max_ms = 20.; seed = i }
        in
        match
          Client.request ~retry ~on_retry ~host:"127.0.0.1" ~port version_body
        with
        | Ok _ -> ()
        | Error e ->
          Alcotest.failf "request %d failed after retries: %a" i
            Client.pp_error e
      done;
      Alcotest.(check bool) "drops forced retries" true (!retries > 0))

(* --- trace propagation + flight recorder --------------------------- *)

let trace_id_of resp =
  match Json.of_string resp with
  | Ok r -> Option.bind (Json.member "trace_id" r) Json.to_string_opt
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e resp

let test_trace_id_echoed () =
  let dispatch = Service.Dispatch.create () in
  (* Caller-supplied ids are adopted verbatim... *)
  Alcotest.(check (option string))
    "ok response echoes caller id" (Some "caller-1")
    (trace_id_of
       (handle ~dispatch
          {|{"kind":"analyze","workload":"pedagogical","machine":"bgq","trace":{"id":"caller-1"}}|}));
  (* ...errors carry the id too... *)
  Alcotest.(check (option string))
    "error response echoes caller id" (Some "caller-2")
    (trace_id_of
       (handle ~dispatch
          {|{"kind":"analyze","workload":"nope","machine":"bgq","trace":{"id":"caller-2"}}|}));
  (* ...and without a caller id the server mints one. *)
  (match
     trace_id_of
       (handle ~dispatch {|{"kind":"analyze","workload":"sord","machine":"bgq"}|})
   with
  | Some id ->
    Alcotest.(check bool)
      (Printf.sprintf "minted id %S has req- prefix" id)
      true
      (String.length id > 4 && String.sub id 0 4 = "req-")
  | None -> Alcotest.fail "no trace_id on minted response");
  (* Even a parse error gets a (minted) id: the envelope invariant
     holds on every response. *)
  Alcotest.(check bool) "parse error carries trace_id" true
    (trace_id_of (handle ~dispatch "{\"kind\":") <> None)

let test_trace_validation () =
  check_error "empty trace id" "invalid_request"
    {|{"kind":"stats","trace":{"id":""}}|};
  check_error "oversized trace id" "invalid_request"
    (Printf.sprintf {|{"kind":"stats","trace":{"id":%S}}|}
       (String.make 200 'x'));
  check_error "non-object trace" "invalid_request"
    {|{"kind":"stats","trace":"t-1"}|}

let test_recent_roundtrip () =
  let module A = Service.Service_api in
  let dispatch = Service.Dispatch.create () in
  ignore
    (handle ~dispatch
       {|{"kind":"analyze","workload":"pedagogical","machine":"bgq","trace":{"id":"seen-1"}}|});
  ignore
    (handle ~dispatch
       {|{"kind":"analyze","workload":"nope","machine":"bgq","trace":{"id":"seen-2"}}|});
  (* The builder's body round-trips through the wire parser... *)
  let body = A.to_body (A.recent ~n:10 ()) in
  (match Service.Protocol.parse_request body with
  | Ok (Service.Protocol.Recent q, _) ->
    Alcotest.(check int) "n" 10 q.Service.Protocol.rc_n
  | _ -> Alcotest.failf "recent body did not parse: %s" body);
  (* ...and the dispatcher answers it with the recorded requests,
     newest first. *)
  let r = result_of (handle ~dispatch body) in
  let ids =
    match Json.member "records" r with
    | Some (Json.List records) ->
      List.filter_map
        (fun rec_ ->
          Option.bind (Json.member "trace_id" rec_) Json.to_string_opt)
        records
    | _ -> Alcotest.fail "records missing"
  in
  Alcotest.(check (list string)) "both recorded, newest first"
    [ "seen-2"; "seen-1" ] ids;
  (* errors_only keeps just the failed request *)
  let r =
    result_of (handle ~dispatch (A.to_body (A.recent ~errors_only:true ())))
  in
  (match Json.member "records" r with
  | Some (Json.List [ rec_ ]) ->
    Alcotest.(check (option string))
      "the error" (Some "seen-2")
      (Option.bind (Json.member "trace_id" rec_) Json.to_string_opt);
    Alcotest.(check (option string))
      "outcome" (Some "unknown_workload")
      (Option.bind (Json.member "outcome" rec_) Json.to_string_opt)
  | _ -> Alcotest.fail "expected exactly the failed record")

let test_trace_kind_roundtrip () =
  let module A = Service.Service_api in
  let dispatch = Service.Dispatch.create () in
  ignore
    (handle ~dispatch
       {|{"kind":"analyze","workload":"pedagogical","machine":"bgq","trace":{"id":"deep-1"}}|});
  let body = A.to_body (A.trace ~id:"deep-1" ()) in
  (match Service.Protocol.parse_request body with
  | Ok (Service.Protocol.Trace id, _) ->
    Alcotest.(check string) "id" "deep-1" id
  | _ -> Alcotest.failf "trace body did not parse: %s" body);
  let resp = handle ~dispatch body in
  let r = result_of resp in
  Alcotest.(check (option string))
    "trace_id in result" (Some "deep-1")
    (Option.bind (Json.member "trace_id" r) Json.to_string_opt);
  (match Json.member "processes" r with
  | Some (Json.List [ p ]) ->
    Alcotest.(check (option string))
      "process label" (Some "skoped")
      (Option.bind (Json.member "process" p) Json.to_string_opt);
    let spans =
      match Option.bind (Json.member "record" p) (Json.member "spans") with
      | Some (Json.List spans) -> spans
      | _ -> Alcotest.fail "spans missing"
    in
    Alcotest.(check bool) "pipeline spans captured" true
      (List.length spans >= 3);
    (* Every span carries the trace id attribute the recorder grouped
       it by. *)
    List.iter
      (fun s ->
        Alcotest.(check (option string))
          "span trace_id attr" (Some "deep-1")
          (Option.bind (Json.member "attrs" s) (Json.member "trace_id")
          |> Fun.flip Option.bind Json.to_string_opt))
      spans;
    (* The merged result converts to a loadable Chrome trace. *)
    (match Service.Traceview.chrome_of_trace r with
    | Ok text -> (
      match Json.of_string text with
      | Ok chrome ->
        (match Json.member "traceEvents" chrome with
        | Some (Json.List evs) ->
          Alcotest.(check bool) "chrome has events" true
            (List.length evs >= List.length spans)
        | _ -> Alcotest.fail "traceEvents missing")
      | Error e -> Alcotest.failf "chrome output not JSON: %s" e)
    | Error e -> Alcotest.failf "chrome_of_trace failed: %s" e)
  | _ -> Alcotest.fail "expected one process");
  (* An unknown id is a structured miss. *)
  Alcotest.(check string) "unknown trace" "invalid_request"
    (error_code (handle ~dispatch (A.to_body (A.trace ~id:"never" ()))))

let test_parse_response_trace_id () =
  let module A = Service.Service_api in
  match A.parse_response {|{"v":1,"ok":true,"trace_id":"t-9","result":{}}|} with
  | Ok r ->
    Alcotest.(check (option string)) "r_trace_id" (Some "t-9") r.A.r_trace_id;
    Alcotest.(check bool) "r_ok" true r.A.r_ok
  | Error e -> Alcotest.failf "parse_response failed: %s" e

let suite =
  [
    ( "service.json",
      [
        Alcotest.test_case "scalars" `Quick test_parse_scalars;
        Alcotest.test_case "structures" `Quick test_parse_structures;
        Alcotest.test_case "string escapes" `Quick test_parse_string_escapes;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        to_alcotest prop_roundtrip;
      ] );
    ( "service.protocol",
      [
        Alcotest.test_case "structured errors" `Quick test_protocol_errors;
        Alcotest.test_case "oversized" `Quick test_oversized;
        Alcotest.test_case "deadline" `Quick test_deadline_exceeded;
        Alcotest.test_case "catalogs and stats" `Quick test_catalogs_and_stats;
        Alcotest.test_case "hostile bodies" `Quick test_worker_never_crashes;
      ] );
    ( "service.lint",
      [
        Alcotest.test_case "workload request" `Quick test_lint_workload;
        Alcotest.test_case "inline source request" `Quick test_lint_source;
        Alcotest.test_case "request validation" `Quick
          test_lint_request_validation;
      ] );
    ( "service.cache",
      [
        Alcotest.test_case "analyze hits" `Quick test_analyze_cache_hit;
        Alcotest.test_case "sweep fully served" `Quick test_sweep_cache;
        Alcotest.test_case "override shares slot" `Quick
          test_override_shares_sweep_slot;
        Alcotest.test_case "distinct queries distinct" `Quick
          test_different_queries_different_results;
        Alcotest.test_case "fingerprint" `Quick test_fingerprint;
      ] );
    ( "service.primitives",
      [
        Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
        Alcotest.test_case "metrics percentiles" `Quick
          test_metrics_percentiles;
        Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
        Alcotest.test_case "workqueue fifo" `Quick test_workqueue_fifo;
        Alcotest.test_case "workqueue threads" `Quick test_workqueue_threads;
      ] );
    ( "service.trace",
      [
        Alcotest.test_case "trace id echoed" `Quick test_trace_id_echoed;
        Alcotest.test_case "trace validation" `Quick test_trace_validation;
        Alcotest.test_case "recent round-trip" `Quick test_recent_roundtrip;
        Alcotest.test_case "trace kind round-trip" `Quick
          test_trace_kind_roundtrip;
        Alcotest.test_case "response trace id parsed" `Quick
          test_parse_response_trace_id;
      ] );
    ( "service.reliability",
      [
        Alcotest.test_case "fault spec parsing" `Quick test_faults_spec;
        Alcotest.test_case "fault stream determinism" `Quick
          test_faults_determinism;
        Alcotest.test_case "backoff determinism and cap" `Quick
          test_backoff_deterministic;
        Alcotest.test_case "overloaded response decoding" `Quick
          test_parse_overloaded_response;
        Alcotest.test_case "drain on shutdown" `Quick
          test_server_roundtrip_and_drain;
        Alcotest.test_case "saturated queue sheds" `Quick
          test_server_sheds_when_saturated;
        Alcotest.test_case "client timeout" `Quick
          test_client_times_out_on_slow_server;
        Alcotest.test_case "truncated response detected" `Quick
          test_client_detects_truncation;
        Alcotest.test_case "refused is structured" `Quick
          test_client_refused_is_structured;
        Alcotest.test_case "retries ride through drops" `Quick
          test_retries_ride_through_drops;
      ] );
  ]
