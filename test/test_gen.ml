(* Tests for the seeded skeleton generator and the differential fuzz
   harness: determinism across runs and worker counts, archetype
   mixing, lint-cleanliness of the generated corpus, the fuzz gates
   end to end on the pinned CI seed, reproducer formatting, and
   regression pins for the bugs the first fuzz campaign surfaced
   (pretty-printed label duplication on combined load/store, negated
   literal round-trips, generic element types, entry-parameter
   binding in the simulator). *)

module G = Skope_gen.Gen
module GA = Skope_gen.Archetype
module GC = Skope_gen.Corpus
module GF = Skope_gen.Fuzzcheck
module Ast = Core.Skeleton.Ast
module B = Core.Skeleton.Builder
module Parser = Core.Skeleton.Parser
module Pretty = Core.Skeleton.Pretty
module Equal = Core.Skeleton.Equal
module Value = Core.Bet.Value
module D = Core.Lint.Diagnostic

let parse = Parser.parse ~file:"test_gen.skope"

let sources ?archetype ~jobs ~seed ~count () =
  GC.generate ?archetype ~jobs ~seed ~count () |> List.map G.to_source

(* --- determinism ----------------------------------------------------- *)

let test_deterministic () =
  let a = sources ~jobs:1 ~seed:42L ~count:40 () in
  let b = sources ~jobs:1 ~seed:42L ~count:40 () in
  Alcotest.(check (list string)) "same seed, same corpus" a b;
  let c = sources ~jobs:1 ~seed:7L ~count:40 () in
  Alcotest.(check bool) "different seed, different corpus" true (a <> c)

let test_jobs_invariant () =
  let a = sources ~jobs:1 ~seed:42L ~count:40 () in
  let b = sources ~jobs:4 ~seed:42L ~count:40 () in
  Alcotest.(check (list string)) "jobs 1 = jobs 4" a b;
  (* Order-independence at the case level: generating one index
     directly equals its slot in the batch. *)
  let batch = GC.generate ~jobs:1 ~seed:42L ~count:40 () in
  let direct = G.generate ~seed:42L ~index:17 () in
  Alcotest.(check string) "single-index = batch slot"
    (G.to_source (List.nth batch 17))
    (G.to_source direct)

let test_manifest_deterministic () =
  let module J = Core.Report.Json in
  let m seed =
    GC.generate ~jobs:2 ~seed ~count:12 ()
    |> GC.manifest_json ~config:G.default ~seed
    |> J.to_string
  in
  Alcotest.(check string) "manifest stable" (m 42L) (m 42L);
  Alcotest.(check bool) "manifest tracks seed" true (m 42L <> m 43L)

(* --- archetype mix --------------------------------------------------- *)

let count_arch cases a =
  List.length (List.filter (fun c -> c.G.archetype = a) cases)

let test_mix_honored () =
  let n = 400 in
  let cases = GC.generate ~jobs:2 ~seed:11L ~count:n () in
  let total_w = List.fold_left (fun acc (_, w) -> acc +. w) 0. GA.default_mix in
  List.iter
    (fun (a, w) ->
      let want = w /. total_w in
      let got = float_of_int (count_arch cases a) /. float_of_int n in
      if Float.abs (got -. want) > 0.07 then
        Alcotest.failf "archetype %s: drew %.3f of the corpus, want ~%.3f"
          (GA.to_string a) got want)
    GA.default_mix;
  (* A forced archetype pins every case. *)
  let forced = GC.generate ~archetype:GA.Comm ~jobs:1 ~seed:11L ~count:10 () in
  Alcotest.(check int) "forced archetype" 10 (count_arch forced GA.Comm)

let test_custom_mix () =
  let mix =
    match GA.mix_of_string "compute=1,branchy=1" with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  let config = G.clamp { G.default with G.mix = mix } in
  let cases = GC.generate ~config ~jobs:1 ~seed:5L ~count:60 () in
  Alcotest.(check int) "zero-weight archetypes never drawn" 0
    (count_arch cases GA.Memory + count_arch cases GA.Comm)

(* --- lint cleanliness ------------------------------------------------ *)

let test_lint_clean_per_archetype () =
  List.iter
    (fun a ->
      let cases = GC.generate ~archetype:a ~jobs:2 ~seed:42L ~count:10 () in
      let findings c =
        Core.Lint.Engine.run ~inputs:c.G.inputs c.G.program
      in
      List.iter
        (fun c ->
          match
            List.filter (fun d -> d.D.severity = D.Error) (findings c)
          with
          | [] -> ()
          | e :: _ ->
            Alcotest.failf "%s case %d has lint error %s: %s" (GA.to_string a)
              c.G.index e.D.code e.D.message)
        cases;
      (* At least one skeleton per archetype is fully clean — no
         warnings either. *)
      let clean c =
        List.for_all (fun d -> d.D.severity = D.Info) (findings c)
      in
      if not (List.exists clean cases) then
        Alcotest.failf "no warning-free %s skeleton in 10 cases"
          (GA.to_string a))
    GA.all

(* --- fuzz gates end to end ------------------------------------------- *)

(* The CI seed: the campaign that surfaced (and now pins) the
   entry-parameter and branch-variance regressions below. *)
let test_fuzz_seed42 () =
  let report = GF.run ~jobs:2 ~seed:42L ~count:100 () in
  Alcotest.(check int) "cases" 100 report.GF.total;
  Alcotest.(check int) "gates" GF.n_gates report.GF.gates_per_case;
  match report.GF.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "case %d failed %s gate: %s (%s)" f.GF.index
      (GF.gate_name f.GF.gate) f.GF.detail f.GF.repro

let test_repro_format () =
  Alcotest.(check string) "default config"
    "skope fuzz --seed 42 --index 7"
    (GF.repro_command ~seed:42L ~index:7 ());
  let config = G.clamp { G.default with G.depth = 5 } in
  let r = GF.repro_command ~config ~archetype:GA.Comm ~seed:1L ~index:0 () in
  (* Non-default flags and a forced archetype must be encoded. *)
  let has sub =
    let n = String.length sub and m = String.length r in
    let rec go i = i + n <= m && (String.sub r i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "records depth" true (has "--depth 5");
  Alcotest.(check bool) "records archetype" true (has "--archetype comm");
  (* And the reproducer really regenerates the same case. *)
  let batch = List.nth (GC.generate ~config ~archetype:GA.Comm ~jobs:1 ~seed:1L ~count:1 ()) 0 in
  let direct = G.generate ~config ~archetype:GA.Comm ~seed:1L ~index:0 () in
  Alcotest.(check string) "repro regenerates identically"
    (G.to_source batch) (G.to_source direct)

(* --- pinned regressions ---------------------------------------------- *)

(* The pretty-printer used to duplicate a combined load/store
   statement's label onto the fissioned store line, so the reparse
   carried a phantom label. *)
let test_mem_label_fission () =
  let p =
    B.program "t"
      ~globals:[ B.array "A" [ B.int 8 ] ]
      [
        B.func "main"
          [
            B.stmt ~label:"m"
              (Ast.Mem
                 {
                   loads = [ B.a_ "A" [ B.int 0 ] ];
                   stores = [ B.a_ "A" [ B.int 1 ] ];
                 });
          ];
      ]
  in
  let text = Pretty.to_string p in
  let occurrences sub s =
    let n = String.length sub and m = String.length s in
    let rec go acc i =
      if i + n > m then acc
      else go (if String.sub s i n = sub then acc + 1 else acc) (i + 1)
    in
    go 0 0
  in
  Alcotest.(check int) "label printed once" 1 (occurrences "@m:" text);
  let p2 = parse text in
  if not (Equal.program ~fission_mem:true p p2) then
    Alcotest.failf "combined Mem does not round-trip:\n%s\n%s" text
      (Option.value ~default:"?" (Equal.first_diff ~fission_mem:true p p2))

(* "-5" parses as Neg(5); a program built with the literal Int (-5)
   prints identically, so equality must treat the two as one. *)
let test_negative_literal_roundtrip () =
  let p =
    B.program "t"
      [
        B.func "main"
          [
            B.let_ "x" (B.int (-5));
            B.if_
              B.(var "x" < int (-1))
              [ B.comp ~flops:(B.int 1) () ]
              [ B.comp ~flops:B.(float (-0.5) * float (-2.)) () ];
          ];
      ]
  in
  let p2 = parse (Pretty.to_string p) in
  if not (Equal.program p p2) then
    Alcotest.failf "negated literals do not round-trip: %s"
      (Option.value ~default:"?" (Equal.first_diff p p2));
  Alcotest.(check string) "pretty idempotent"
    (Pretty.to_string p) (Pretty.to_string p2)

(* Generic f<bits>/i<bits> element types: the generator emits f16
   arrays, which the parser used to reject. *)
let test_generic_elem_type () =
  let src = "program t\narray A[4] : f16\ndef main() { load A[0] }\n" in
  let p = parse src in
  (match p.Ast.globals with
  | [ { Ast.elem_bytes; _ } ] ->
    Alcotest.(check int) "f16 is 2 bytes" 2 elem_bytes
  | _ -> Alcotest.fail "expected one global array");
  let p2 = parse (Pretty.to_string p) in
  if not (Equal.program p p2) then Alcotest.fail "f16 does not round-trip"

(* Entry-function parameters used to compile to zero-initialized
   frame slots, shadowing the same-named inputs: every generated
   `def main(n)` loop ran zero trips and the simulator priced ~nothing
   (seed 42, case 51 of the first campaign). *)
let test_entry_param_binding () =
  let src =
    "program t\ndef main(n) { @l: for i = 0 to n - 1 { comp flops=1 } }\n"
  in
  let r =
    Core.Sim.Interp.run ~inputs:[ ("n", Value.I 200) ] (parse src)
  in
  if r.Core.Sim.Interp.total_cycles < 200. then
    Alcotest.failf "entry param n not bound: %g cycles for 200 iterations"
      r.Core.Sim.Interp.total_cycles

let suite =
  [
    ( "gen",
      [
        Alcotest.test_case "deterministic per seed" `Quick test_deterministic;
        Alcotest.test_case "independent of --jobs" `Quick test_jobs_invariant;
        Alcotest.test_case "manifest deterministic" `Quick
          test_manifest_deterministic;
        Alcotest.test_case "mix ratios honored" `Quick test_mix_honored;
        Alcotest.test_case "custom mix" `Quick test_custom_mix;
        Alcotest.test_case "lint-clean per archetype" `Quick
          test_lint_clean_per_archetype;
      ] );
    ( "fuzz",
      [
        Alcotest.test_case "seed 42 campaign passes all gates" `Quick
          test_fuzz_seed42;
        Alcotest.test_case "reproducer format" `Quick test_repro_format;
        Alcotest.test_case "regression: Mem label fission" `Quick
          test_mem_label_fission;
        Alcotest.test_case "regression: negated literals" `Quick
          test_negative_literal_roundtrip;
        Alcotest.test_case "regression: generic elem types" `Quick
          test_generic_elem_type;
        Alcotest.test_case "regression: entry-param binding" `Quick
          test_entry_param_binding;
      ] );
  ]
