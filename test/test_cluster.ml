(* Tests for the cluster layer: the consistent-hash ring (determinism,
   balance, minimal disruption, failover order, bounded load), the
   health state machine, Prometheus aggregation, and an in-process
   router + shards end-to-end (affinity, disjoint caches, failover,
   topology reporting). *)

module Json = Core.Report.Json
module Service = Skope_service
module Client = Skope_service.Client
module Api = Skope_service.Service_api
module Ring = Skope_cluster.Ring
module Health = Skope_cluster.Health
module Aggregate = Skope_cluster.Aggregate
module Router = Skope_cluster.Router
module Local = Skope_cluster.Local

(* Fingerprint-shaped keys (32 hex chars), deterministic. *)
let keys n = List.init n (fun i -> Digest.to_hex (Digest.string (string_of_int i)))

let owners ring ks =
  List.map (fun k -> (k, Option.get (Ring.owner ring k))) ks

(* --- ring ----------------------------------------------------------- *)

let test_ring_determinism () =
  let members = [ "s0"; "s1"; "s2"; "s3" ] in
  let a = Ring.create ~vnodes:128 ~seed:42 members in
  let b = Ring.create ~vnodes:128 ~seed:42 (List.rev members) in
  let ks = keys 200 in
  List.iter
    (fun k ->
      Alcotest.(check string)
        (Printf.sprintf "same owner for %s" k)
        (Option.get (Ring.owner a k))
        (Option.get (Ring.owner b k)))
    ks;
  let c = Ring.create ~vnodes:128 ~seed:43 members in
  let differs =
    List.exists (fun k -> Ring.owner a k <> Ring.owner c k) ks
  in
  Alcotest.(check bool) "different seed reshuffles" true differs

let test_ring_balance () =
  let members = [ "s0"; "s1"; "s2"; "s3" ] in
  let ring = Ring.create ~vnodes:128 ~seed:42 members in
  let counts = Hashtbl.create 4 in
  List.iter
    (fun k ->
      let o = Option.get (Ring.owner ring k) in
      Hashtbl.replace counts o
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts o)))
    (keys 1000);
  let max_share =
    List.fold_left
      (fun acc m ->
        max acc (Option.value ~default:0 (Hashtbl.find_opt counts m)))
      0 members
  in
  let mean = 1000. /. 4. in
  Alcotest.(check bool)
    (Printf.sprintf "max/mean = %.3f <= 1.25" (float_of_int max_share /. mean))
    true
    (float_of_int max_share /. mean <= 1.25);
  (* every member owns something at 128 vnodes *)
  Alcotest.(check int) "all members used" 4 (Hashtbl.length counts)

let test_ring_minimal_disruption () =
  let ring = Ring.create ~vnodes:128 ~seed:42 [ "s0"; "s1"; "s2"; "s3" ] in
  let ks = keys 1000 in
  let before = owners ring ks in
  let after = owners (Ring.remove ring "s2") ks in
  List.iter2
    (fun (k, o1) (_, o2) ->
      if o1 = "s2" then
        Alcotest.(check bool) "dead shard's key moved" true (o2 <> "s2")
      else
        Alcotest.(check string)
          (Printf.sprintf "surviving key %s stays put" k)
          o1 o2)
    before after;
  (* readmission restores the original placement exactly *)
  let restored = owners (Ring.add (Ring.remove ring "s2") "s2") ks in
  List.iter2
    (fun (_, o1) (_, o2) -> Alcotest.(check string) "restored" o1 o2)
    before restored

let test_ring_successors () =
  let ring = Ring.create ~vnodes:128 ~seed:42 [ "s0"; "s1"; "s2"; "s3" ] in
  let key = "a-fingerprint" in
  let order = Ring.successors ring key in
  Alcotest.(check int) "covers every member" 4 (List.length order);
  Alcotest.(check int) "distinct" 4
    (List.length (List.sort_uniq String.compare order));
  let o = Option.get (Ring.owner ring key) in
  Alcotest.(check string) "head is the owner" o (List.hd order);
  (* killing the owner hands the key to the ring successor *)
  let next = List.nth order 1 in
  Alcotest.(check string) "failover target is the successor" next
    (Option.get (Ring.owner (Ring.remove ring o) key))

let test_ring_bounded_load () =
  let ring = Ring.create ~vnodes:128 ~seed:7 [ "a"; "b"; "c" ] in
  let key = "hot-key" in
  let order = Ring.successors ring key in
  let owner = List.hd order and next = List.nth order 1 in
  (* all idle: the owner keeps its key *)
  let idle = Ring.route ~load:(fun _ -> 0) ~factor:1.25 ring key in
  Alcotest.(check string) "idle ring routes to owner" owner (List.hd idle);
  (* the owner far over capacity spills to the successor, but stays in
     the failover order *)
  let load m = if m = owner then 10 else 0 in
  let routed = Ring.route ~load ~factor:1.25 ring key in
  Alcotest.(check string) "overloaded owner spills" next (List.hd routed);
  Alcotest.(check bool) "owner still routable" true (List.mem owner routed);
  Alcotest.(check int) "nobody dropped" 3 (List.length routed)

(* --- health --------------------------------------------------------- *)

let test_health_state_machine () =
  let cfg = { Health.fall = 3; rise = 2 } in
  let step state ok = Health.observe cfg state ~ok in
  (* two failures stay routable, a success resets *)
  let s, e = step Health.Healthy false in
  Alcotest.(check bool) "no event" true (e = None);
  let s, _ = step s false in
  Alcotest.(check bool) "suspect still available" true (Health.available s);
  let s, _ = step s true in
  Alcotest.(check bool) "success resets" true (s = Health.Healthy);
  (* fall consecutive failures eject *)
  let s, _ = step Health.Healthy false in
  let s, _ = step s false in
  let s, e = step s false in
  Alcotest.(check bool) "ejection event" true (e = Some Health.Ejection);
  Alcotest.(check bool) "ejected unavailable" false (Health.available s);
  (* a lone success does not readmit; rise consecutive ones do *)
  let s, e = step s true in
  Alcotest.(check bool) "not yet readmitted" true
    (e = None && not (Health.available s));
  (* an intervening failure resets the rise count *)
  let s2, _ = step s false in
  let s2, e2 = step s2 true in
  Alcotest.(check bool) "failure reset the streak" true
    (e2 = None && not (Health.available s2));
  let s, e = step s true in
  Alcotest.(check bool) "readmission event" true (e = Some Health.Readmission);
  Alcotest.(check bool) "healthy again" true (s = Health.Healthy)

(* --- aggregate ------------------------------------------------------ *)

let count_substring hay needle =
  let n = String.length needle in
  let rec go i acc =
    if i + n > String.length hay then acc
    else if String.sub hay i n = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_aggregate_merge () =
  let shard v =
    Printf.sprintf
      "# HELP skope_requests_total Total requests.\n\
       # TYPE skope_requests_total counter\n\
       skope_requests_total{kind=\"analyze\"} %d\n\
       skope_requests_total %d\n\
       # HELP skope_request_seconds Latency.\n\
       # TYPE skope_request_seconds histogram\n\
       skope_request_seconds_bucket{le=\"0.1\"} %d\n\
       skope_request_seconds_sum %d.5\n\
       # HELP skope_lru_entries Cache entries.\n\
       # TYPE skope_lru_entries gauge\n\
       skope_lru_entries %d\n"
      v (v * 2) v v (v * 3)
  in
  let merged = Aggregate.merge [ ("s0", shard 5); ("s1", shard 9) ] in
  (* one header per family, regardless of shard count *)
  List.iter
    (fun fam ->
      Alcotest.(check int)
        (Printf.sprintf "one HELP for %s" fam)
        1
        (count_substring merged (Printf.sprintf "# HELP %s " fam));
      Alcotest.(check int)
        (Printf.sprintf "one TYPE for %s" fam)
        1
        (count_substring merged (Printf.sprintf "# TYPE %s " fam)))
    [ "skope_requests_total"; "skope_request_seconds"; "skope_lru_entries" ];
  (* labels injected first into existing sets, fresh sets on bare names *)
  Alcotest.(check int) "labelled sample kept labels" 1
    (count_substring merged
       "skope_requests_total{shard=\"s0\",kind=\"analyze\"} 5");
  Alcotest.(check int) "bare sample got a label set" 1
    (count_substring merged "skope_lru_entries{shard=\"s1\"} 27");
  (* histogram samples stayed inside their family block *)
  Alcotest.(check int) "bucket samples labelled" 1
    (count_substring merged
       "skope_request_seconds_bucket{shard=\"s1\",le=\"0.1\"} 9");
  (* every sample of both shards survived *)
  Alcotest.(check int) "all s0 samples" 5 (count_substring merged "{shard=\"s0\"");
  Alcotest.(check int) "all s1 samples" 5 (count_substring merged "{shard=\"s1\"")

let test_inject_label_edge_cases () =
  Alcotest.(check string) "empty label set"
    "foo{shard=\"s0\"} 1"
    (Aggregate.inject_label ~shard:"s0" "foo{} 1");
  Alcotest.(check string) "bare counter"
    "foo_total{shard=\"s0\"} 2"
    (Aggregate.inject_label ~shard:"s0" "foo_total 2")

let test_inject_label_escaping () =
  (* Prometheus label values escape backslash and double-quote; a
     hostile shard id must not break the exposition syntax. *)
  Alcotest.(check string) "quote escaped"
    "foo{shard=\"s\\\"0\"} 1"
    (Aggregate.inject_label ~shard:"s\"0" "foo 1");
  Alcotest.(check string) "backslash escaped"
    "foo{shard=\"s\\\\0\"} 1"
    (Aggregate.inject_label ~shard:"s\\0" "foo 1");
  Alcotest.(check string) "newline escaped"
    "foo{shard=\"s\\n0\"} 1"
    (Aggregate.inject_label ~shard:"s\n0" "foo 1")

let test_aggregate_histogram_family () =
  (* A full histogram family from two shards, with the second shard
     emitting its families in a different order: bucket/sum/count
     samples must stay grouped under one header block. *)
  let shard ?(flip = false) v =
    let hist =
      Printf.sprintf
        "# HELP skope_phase_duration_seconds Phase latency.\n\
         # TYPE skope_phase_duration_seconds histogram\n\
         skope_phase_duration_seconds_bucket{phase=\"eval\",le=\"0.01\"} %d\n\
         skope_phase_duration_seconds_bucket{phase=\"eval\",le=\"+Inf\"} %d\n\
         skope_phase_duration_seconds_sum{phase=\"eval\"} %d.25\n\
         skope_phase_duration_seconds_count{phase=\"eval\"} %d\n"
        v (v + 1) v (v + 1)
    in
    let gauge =
      Printf.sprintf
        "# HELP skope_lru_entries Cache entries.\n\
         # TYPE skope_lru_entries gauge\n\
         skope_lru_entries %d\n"
        v
    in
    if flip then gauge ^ hist else hist ^ gauge
  in
  let merged =
    Aggregate.merge [ ("s0", shard 3); ("s1", shard ~flip:true 7) ]
  in
  Alcotest.(check int) "one histogram header" 1
    (count_substring merged "# TYPE skope_phase_duration_seconds histogram");
  (* all eight histogram samples survived, each with its shard label *)
  List.iter
    (fun (shard, v) ->
      List.iter
        (fun line -> Alcotest.(check int) line 1 (count_substring merged line))
        [
          Printf.sprintf
            "skope_phase_duration_seconds_bucket{shard=%S,phase=\"eval\",le=\"0.01\"} %d"
            shard v;
          Printf.sprintf
            "skope_phase_duration_seconds_bucket{shard=%S,phase=\"eval\",le=\"+Inf\"} %d"
            shard (v + 1);
          Printf.sprintf
            "skope_phase_duration_seconds_sum{shard=%S,phase=\"eval\"} %d.25"
            shard v;
          Printf.sprintf
            "skope_phase_duration_seconds_count{shard=%S,phase=\"eval\"} %d"
            shard (v + 1);
        ])
    [ ("s0", 3); ("s1", 7) ];
  (* the family block is contiguous: every histogram sample sits
     between the family header and the next family header *)
  let find hay needle =
    let n = String.length needle in
    let rec go i =
      if i + n > String.length hay then -1
      else if String.sub hay i n = needle then i
      else go (i + 1)
    in
    go 0
  in
  let rfind hay needle =
    let n = String.length needle in
    let rec go i best =
      if i + n > String.length hay then best
      else if String.sub hay i n = needle then go (i + 1) i
      else go (i + 1) best
    in
    go 0 (-1)
  in
  let header_at = find merged "# TYPE skope_phase_duration_seconds" in
  let gauge_header_at = find merged "# TYPE skope_lru_entries" in
  let last_sample_at = rfind merged "skope_phase_duration_seconds_count" in
  Alcotest.(check bool) "samples follow their header" true
    (header_at < last_sample_at);
  Alcotest.(check bool) "family blocks do not interleave" true
    (last_sample_at < gauge_header_at || gauge_header_at < header_at)

(* --- protocol plumbing ---------------------------------------------- *)

let test_cluster_stats_kind () =
  let body = Api.to_body Api.Cluster_stats in
  (match Service.Protocol.parse_request body with
  | Ok (Service.Protocol.Cluster_stats, { Service.Protocol.timeout_ms = None; _ })
    -> ()
  | Ok _ -> Alcotest.fail "parsed to the wrong request"
  | Error (_, m) -> Alcotest.failf "parse failed: %s" m);
  (* a single-process skoped refuses it, pointing at the router *)
  let d = Service.Dispatch.create () in
  let resp = Service.Dispatch.handle d body in
  match Api.parse_response resp with
  | Ok r ->
    Alcotest.(check bool) "rejected" false r.Api.r_ok;
    Alcotest.(check (option string)) "code" (Some "invalid_request")
      r.Api.r_error_code;
    Alcotest.(check bool) "mentions the router" true
      (match r.Api.r_error_message with
      | Some m -> count_substring m "skope route" = 1
      | None -> false)
  | Error e -> Alcotest.failf "undecodable response: %s" e

(* --- end-to-end: in-process cluster --------------------------------- *)

let with_cluster ?(shards = 2) ?(cache = 64) ?health f =
  let c =
    Local.start ~shards ~cache_capacity:cache ?health ~probe_interval_s:0.1
      ~shard_pool:1 ~router_pool:2 ()
  in
  Fun.protect ~finally:(fun () -> Local.stop c) (fun () -> f c)

let request ?(retry = Client.default_retry) port body =
  match Client.request ~retry ~host:"127.0.0.1" ~port body with
  | Ok r -> r
  | Error e -> Alcotest.failf "request failed: %a" Client.pp_error e

let analyze_body scale =
  Api.to_body
    (Api.analyze
       ~opts:{ Api.default_query_opts with Api.scale = Some scale }
       ~workload:"sord" ~machine:"bgq" ())

let response_result resp =
  match Json.of_string resp with
  | Ok j ->
    Alcotest.(check bool) "response ok" true
      (Json.member "ok" j = Some (Json.Bool true));
    Option.get (Json.member "result" j)
  | Error e -> Alcotest.failf "bad response json: %s" e

let shard_of resp =
  match Router.shard_of_response resp with
  | Some s -> s
  | None -> Alcotest.failf "response has no shard field: %s" resp

let cluster_stats port =
  response_result (request port (Api.to_body Api.Cluster_stats))

(* (id, state, cache_hits, cache_misses) per member. *)
let member_cache_stats stats =
  match Json.member "members" stats with
  | Some (Json.List ms) ->
    List.map
      (fun m ->
        let str key =
          match Json.member key m with Some (Json.String s) -> s | _ -> "?"
        in
        let metric key =
          match
            Option.bind
              (Option.bind (Json.member "stats" m) (Json.member "metrics"))
              (Json.member key)
          with
          | Some (Json.Int n) -> n
          | _ -> 0
        in
        (str "id", str "state", metric "cache_hits", metric "cache_misses"))
      ms
  | _ -> Alcotest.fail "cluster_stats has no members list"

let int_at path json =
  let rec go json = function
    | [] -> ( match json with Json.Int n -> n | _ -> -1)
    | k :: rest -> (
      match Json.member k json with Some j -> go j rest | None -> -1)
  in
  go json path

let test_e2e_affinity_disjoint_caches () =
  with_cluster ~shards:2 (fun c ->
      let port = Local.router_port c in
      let scales = List.init 6 (fun i -> 0.2 +. (0.01 *. float_of_int i)) in
      (* round 1: six distinct fingerprints, one build each *)
      let placed =
        List.map (fun s -> (s, shard_of (request port (analyze_body s)))) scales
      in
      (* round 2: every repeat lands on the same shard and is a hit *)
      List.iter
        (fun (s, shard) ->
          Alcotest.(check string)
            (Printf.sprintf "scale %.2f sticks to its shard" s)
            shard
            (shard_of (request port (analyze_body s))))
        placed;
      let stats = member_cache_stats (cluster_stats port) in
      let hits = List.fold_left (fun a (_, _, h, _) -> a + h) 0 stats in
      let misses = List.fold_left (fun a (_, _, _, m) -> a + m) 0 stats in
      (* disjoint: each fingerprint was built exactly once cluster-wide
         and was a hit exactly once (its repeat), on its owning shard *)
      Alcotest.(check int) "6 builds cluster-wide" 6 misses;
      Alcotest.(check int) "6 hits cluster-wide" 6 hits;
      Alcotest.(check int) "all shards healthy" 2
        (int_at [ "healthy" ] (cluster_stats port)))

let test_e2e_capabilities_topology () =
  with_cluster ~shards:2 (fun c ->
      let port = Local.router_port c in
      let result = response_result (request port (Api.to_body Api.Capabilities)) in
      (match Json.member "kinds" result with
      | Some (Json.List kinds) ->
        Alcotest.(check bool) "advertises cluster_stats" true
          (List.mem (Json.String "cluster_stats") kinds);
        Alcotest.(check bool) "still advertises analyze" true
          (List.mem (Json.String "analyze") kinds)
      | _ -> Alcotest.fail "no kinds in capabilities");
      Alcotest.(check int) "cluster.shards" 2
        (int_at [ "cluster"; "shards" ] result);
      match Json.member "cluster" result with
      | Some cl -> (
        match Json.member "ring" cl with
        | Some ring ->
          Alcotest.(check int) "ring seed" 42 (int_at [ "seed" ] ring);
          (match Json.member "members" ring with
          | Some (Json.List ms) ->
            Alcotest.(check int) "ring members" 2 (List.length ms)
          | _ -> Alcotest.fail "no ring members")
        | None -> Alcotest.fail "no ring in cluster topology")
      | None -> Alcotest.fail "no cluster object in capabilities")

let test_e2e_metrics_aggregation () =
  with_cluster ~shards:2 (fun c ->
      let port = Local.router_port c in
      ignore (request port (analyze_body 0.25));
      let result =
        response_result (request port (Api.to_body Api.Metrics_prom))
      in
      let body =
        match Json.member "body" result with
        | Some (Json.String s) -> s
        | _ -> Alcotest.fail "no exposition body"
      in
      Alcotest.(check int) "router family present" 1
        (count_substring body "skope_cluster_shards 2");
      List.iter
        (fun id ->
          Alcotest.(check bool)
            (Printf.sprintf "per-shard series for %s" id)
            true
            (count_substring body (Printf.sprintf "{shard=\"%s\"" id) > 0))
        [ "s0"; "s1" ];
      (* shard families are deduplicated to one header *)
      Alcotest.(check int) "one HELP for shard requests" 1
        (count_substring body "# HELP skope_requests_total "))

let test_e2e_failover_and_ejection () =
  with_cluster ~shards:2 ~health:{ Health.fall = 2; rise = 2 } (fun c ->
      let port = Local.router_port c in
      let body = analyze_body 0.3 in
      let owner = shard_of (request port body) in
      let owner_index =
        match Array.to_list (Local.shard_ids c) |> List.mapi (fun i x -> (i, x))
              |> List.find_opt (fun (_, x) -> x = owner) with
        | Some (i, _) -> i
        | None -> Alcotest.failf "unknown shard id %s" owner
      in
      (* kill the owning shard: the very next request must still be
         answered, by the ring successor *)
      Local.stop_shard c owner_index;
      let survivor = shard_of (request port body) in
      Alcotest.(check bool) "failed over off the dead shard" true
        (survivor <> owner);
      (* probes (every 0.1 s, fall 2) eject the dead member *)
      let deadline = Unix.gettimeofday () +. 5. in
      let rec wait_ejected () =
        let stats = cluster_stats port in
        if int_at [ "healthy" ] stats = 1 then stats
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "dead shard never ejected"
        else begin
          Thread.delay 0.05;
          wait_ejected ()
        end
      in
      let stats = wait_ejected () in
      List.iter
        (fun (id, state, _, _) ->
          if id = owner then
            Alcotest.(check string) "dead member ejected" "ejected" state)
        (member_cache_stats stats);
      Alcotest.(check bool) "router recorded failovers" true
        (int_at [ "router"; "failovers" ] stats >= 1);
      (* post-ejection the cluster answers without failover latency *)
      for _ = 1 to 5 do
        Alcotest.(check string) "steady state on survivor" survivor
          (shard_of (request port body))
      done)

let test_e2e_no_shard_is_structured () =
  with_cluster ~shards:1 (fun c ->
      let port = Local.router_port c in
      Local.stop_shard c 0;
      match
        Client.request ~retry:Client.no_retry ~host:"127.0.0.1" ~port
          (analyze_body 0.25)
      with
      | Ok resp -> Alcotest.failf "expected overloaded, got: %s" resp
      | Error (Client.Overloaded { retry_after_ms; _ }) ->
        Alcotest.(check bool) "carries a backoff hint" true
          (retry_after_ms <> None)
      | Error e -> Alcotest.failf "expected overloaded, got %a" Client.pp_error e)

let test_e2e_trace_propagation () =
  with_cluster ~shards:3 (fun c ->
      let port = Local.router_port c in
      let tid = "e2e-trace-1" in
      (* One id rides the whole path: client -> router -> owning shard. *)
      let resp =
        request port
          (Api.to_body ~trace_id:tid
             (Api.analyze
                ~opts:{ Api.default_query_opts with Api.scale = Some 0.21 }
                ~workload:"sord" ~machine:"bgq" ()))
      in
      (match Api.parse_response resp with
      | Ok r ->
        Alcotest.(check (option string))
          "router echoes the caller id" (Some tid) r.Api.r_trace_id
      | Error e -> Alcotest.failf "undecodable response: %s" e);
      let owner = shard_of resp in
      (* The merged trace has the router's AND the owning shard's
         record, under the same id. *)
      let trace =
        response_result (request port (Api.to_body (Api.trace ~id:tid ())))
      in
      let processes =
        match Json.member "processes" trace with
        | Some (Json.List ps) -> ps
        | _ -> Alcotest.fail "trace result has no processes"
      in
      let names =
        List.filter_map
          (fun p -> Option.bind (Json.member "process" p) Json.to_string_opt)
          processes
      in
      Alcotest.(check bool) "router process present" true
        (List.mem "router" names);
      Alcotest.(check bool)
        (Printf.sprintf "owning shard %s present" owner)
        true (List.mem owner names);
      List.iter
        (fun p ->
          match Option.bind (Json.member "record" p) (Json.member "spans") with
          | Some (Json.List spans) ->
            Alcotest.(check bool) "process contributed spans" true
              (List.length spans >= 1)
          | _ -> Alcotest.fail "process record has no spans")
        processes;
      (* The merged result converts to Chrome trace_event JSON that
         round-trips through the JSON parser. *)
      (match Service.Traceview.chrome_of_trace trace with
      | Ok text -> (
        match Json.of_string text with
        | Ok chrome -> (
          match Json.member "traceEvents" chrome with
          | Some (Json.List evs) ->
            (* one process_name metadata event per process, plus spans *)
            Alcotest.(check bool) "chrome events cover both processes" true
              (List.length evs > List.length processes)
          | _ -> Alcotest.fail "no traceEvents")
        | Error e -> Alcotest.failf "chrome output is not JSON: %s" e)
      | Error e -> Alcotest.failf "chrome conversion failed: %s" e);
      (* The owning shard's own flight recorder shows the request. *)
      let shard_port =
        let ids = Local.shard_ids c and ports = Local.shard_ports c in
        let found = ref None in
        Array.iteri (fun i id -> if id = owner then found := Some ports.(i)) ids;
        Option.get !found
      in
      let recent =
        response_result
          (request shard_port (Api.to_body (Api.recent ~n:50 ())))
      in
      let recent_ids =
        match Json.member "records" recent with
        | Some (Json.List records) ->
          List.filter_map
            (fun r -> Option.bind (Json.member "trace_id" r) Json.to_string_opt)
            records
        | _ -> Alcotest.fail "recent has no records"
      in
      Alcotest.(check bool) "request visible on owning shard" true
        (List.mem tid recent_ids))

let suite =
  [
    ( "cluster.ring",
      [
        Alcotest.test_case "seeded determinism" `Quick test_ring_determinism;
        Alcotest.test_case "balance bound" `Quick test_ring_balance;
        Alcotest.test_case "minimal disruption" `Quick
          test_ring_minimal_disruption;
        Alcotest.test_case "successor failover order" `Quick
          test_ring_successors;
        Alcotest.test_case "bounded load" `Quick test_ring_bounded_load;
      ] );
    ( "cluster.health",
      [
        Alcotest.test_case "ejection and readmission" `Quick
          test_health_state_machine;
      ] );
    ( "cluster.aggregate",
      [
        Alcotest.test_case "merge with shard labels" `Quick
          test_aggregate_merge;
        Alcotest.test_case "label injection edges" `Quick
          test_inject_label_edge_cases;
        Alcotest.test_case "label value escaping" `Quick
          test_inject_label_escaping;
        Alcotest.test_case "histogram family merge" `Quick
          test_aggregate_histogram_family;
      ] );
    ( "cluster.protocol",
      [
        Alcotest.test_case "cluster_stats kind" `Quick test_cluster_stats_kind;
      ] );
    ( "cluster.e2e",
      [
        Alcotest.test_case "affinity and disjoint caches" `Quick
          test_e2e_affinity_disjoint_caches;
        Alcotest.test_case "capabilities topology" `Quick
          test_e2e_capabilities_topology;
        Alcotest.test_case "metrics aggregation" `Quick
          test_e2e_metrics_aggregation;
        Alcotest.test_case "failover and ejection" `Quick
          test_e2e_failover_and_ejection;
        Alcotest.test_case "no shard left" `Quick
          test_e2e_no_shard_is_structured;
        Alcotest.test_case "trace propagation" `Quick
          test_e2e_trace_propagation;
      ] );
  ]
