(* Telemetry: histograms, spans, the Chrome trace exporter, the
   Prometheus renderer, and their integration with the service
   metrics registry. *)

module T = Core.Telemetry
module Hist = T.Hist
module Span = T.Span
module Chrome = T.Chrome
module Agg = T.Agg
module Prom = T.Prom
module Json = Core.Report.Json
module Metrics = Skope_service.Metrics
module Dispatch = Skope_service.Dispatch

let feq = Alcotest.(check (float 1e-12))

(* --- histogram ----------------------------------------------------- *)

let test_hist_single_sample () =
  let h = Hist.create () in
  Hist.observe h 0.5;
  let s = Hist.snapshot h in
  (* The satellite fix: at n=1 every percentile IS that sample, not a
     bucket approximation of it. *)
  feq "p50 of one sample" 0.5 s.Hist.p50;
  feq "p95 of one sample" 0.5 s.Hist.p95;
  feq "p99 of one sample" 0.5 s.Hist.p99;
  Alcotest.(check int) "count" 1 s.Hist.count;
  feq "sum" 0.5 s.Hist.sum;
  feq "min" 0.5 s.Hist.min;
  feq "max" 0.5 s.Hist.max

let test_hist_small_samples () =
  let h = Hist.create () in
  List.iter (Hist.observe h) [ 0.010; 0.020; 0.030 ];
  let s = Hist.snapshot h in
  feq "p50 of 3" 0.020 s.Hist.p50;
  feq "p99 of 3" 0.030 s.Hist.p99;
  feq "quantile 0" 0.010 (Hist.quantile s 0.0);
  feq "quantile 1" 0.030 (Hist.quantile s 1.0)

let test_hist_percentiles_100 () =
  let h = Hist.create () in
  for i = 1 to 100 do
    Hist.observe h (float_of_int i /. 1e3)
  done;
  let s = Hist.snapshot h in
  feq "p50" 0.050 s.Hist.p50;
  feq "p95" 0.095 s.Hist.p95;
  feq "p99" 0.099 s.Hist.p99

let test_hist_cumulative_and_reset () =
  let h = Hist.create ~bounds:[| 0.001; 0.01; 0.1 |] () in
  List.iter (Hist.observe h) [ 0.0005; 0.005; 0.05; 0.5 ];
  let s = Hist.snapshot h in
  (match Hist.cumulative s with
  | [ (b1, c1); (b2, c2); (b3, c3); (binf, cinf) ] ->
    feq "bound 1" 0.001 b1;
    Alcotest.(check int) "cum 1" 1 c1;
    feq "bound 2" 0.01 b2;
    Alcotest.(check int) "cum 2" 2 c2;
    feq "bound 3" 0.1 b3;
    Alcotest.(check int) "cum 3" 3 c3;
    Alcotest.(check bool) "last bound +Inf" true (binf = infinity);
    Alcotest.(check int) "cum inf = count" 4 cinf
  | l ->
    Alcotest.failf "expected 4 cumulative buckets, got %d" (List.length l));
  Hist.reset h;
  let s = Hist.snapshot h in
  Alcotest.(check int) "count after reset" 0 s.Hist.count;
  feq "p99 after reset" 0. s.Hist.p99

let test_hist_negative_clamped () =
  let h = Hist.create () in
  Hist.observe h (-1.0);
  let s = Hist.snapshot h in
  feq "negative clamped to 0" 0. s.Hist.max

(* --- span counters ------------------------------------------------- *)

let test_counters () =
  Span.reset_counters ();
  Span.count "widgets" 2.;
  Span.count "widgets" 3.;
  Span.count "gadgets" 1.;
  (match List.assoc_opt "widgets" (Span.counters ()) with
  | Some v -> feq "widgets total" 5. v
  | None -> Alcotest.fail "widgets counter missing");
  Span.reset_counters ();
  Alcotest.(check (list (pair string (float 0.))))
    "reset clears" [] (Span.counters ())

(* --- chrome exporter ----------------------------------------------- *)

(* Run [f] with a private Chrome collector installed. *)
let with_chrome f =
  let c = Chrome.create () in
  let sink = Chrome.sink c in
  Span.add_sink sink;
  Fun.protect ~finally:(fun () -> Span.remove_sink sink) (fun () -> f ());
  c

let events_of_trace c =
  match Json.of_string (Chrome.to_json c) with
  | Error msg -> Alcotest.failf "trace is not valid JSON: %s" msg
  | Ok json -> (
    match Json.member "traceEvents" json with
    | Some (Json.List evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing")

let str_field ev key =
  Option.bind (Json.member key ev) Json.to_string_opt
  |> Option.value ~default:"?"

let num_field ev key =
  Option.bind (Json.member key ev) Json.to_float_opt
  |> Option.value ~default:Float.nan

let test_chrome_roundtrip () =
  let c =
    with_chrome (fun () ->
        Span.with_ ~name:"outer" ~attrs:[ ("k", "v\"quoted\"") ] (fun () ->
            Span.with_ ~name:"inner" (fun () -> Span.count "steps" 3.)))
  in
  Alcotest.(check int) "two spans collected" 2 (Chrome.length c);
  let evs = events_of_trace c in
  Alcotest.(check int) "two events" 2 (List.length evs);
  let names = List.map (fun e -> str_field e "name") evs in
  Alcotest.(check bool) "outer present" true (List.mem "outer" names);
  Alcotest.(check bool) "inner present" true (List.mem "inner" names);
  List.iter
    (fun e ->
      Alcotest.(check string) "complete event" "X" (str_field e "ph");
      Alcotest.(check string) "category" "skope" (str_field e "cat"))
    evs;
  (* Nesting: the inner event's [ts, ts+dur] interval sits inside the
     outer's, and its parent_id args entry names the outer span. *)
  let find name = List.find (fun e -> str_field e "name" = name) evs in
  let outer = find "outer" and inner = find "inner" in
  let lo e = num_field e "ts" and hi e = num_field e "ts" +. num_field e "dur" in
  Alcotest.(check bool) "inner starts after outer" true (lo inner >= lo outer);
  Alcotest.(check bool) "inner ends before outer" true (hi inner <= hi outer +. 1e-6);
  let args e = Option.get (Json.member "args" e) in
  Alcotest.(check (option (float 0.)))
    "parent_id links inner to outer"
    (Json.to_float_opt (Option.get (Json.member "span_id" (args outer))))
    (Json.to_float_opt (Option.get (Json.member "parent_id" (args inner))));
  (* Attrs and span counters land in args. *)
  Alcotest.(check string) "attr escaped+recovered" "v\"quoted\""
    (str_field (args outer) "k");
  feq "counter in args" 3. (num_field (args inner) "steps")

let test_chrome_error_span () =
  let c =
    with_chrome (fun () ->
        try Span.with_ ~name:"boom" (fun () -> failwith "no") with
        | Failure _ -> ())
  in
  let evs = events_of_trace c in
  let ev = List.find (fun e -> str_field e "name" = "boom") evs in
  let args = Option.get (Json.member "args" ev) in
  Alcotest.(check string) "error attribute" "true" (str_field args "error")

let test_chrome_stable_names () =
  let run () =
    with_chrome (fun () ->
        let w = Core.Workloads.Registry.find_exn "pedagogical" in
        ignore
          (Core.Pipeline.analyze ~machine:Core.Hw.Machines.bgq ~workload:w
             ~scale:w.Core.Workloads.Registry.default_scale ()))
  in
  let names c =
    events_of_trace c
    |> List.map (fun e -> str_field e "name")
    |> List.sort_uniq compare
  in
  let a = names (run ()) and b = names (run ()) in
  Alcotest.(check (list string)) "span names stable across runs" a b;
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " expected") true (List.mem n a))
    [ "workload_make"; "validate"; "lint"; "bet_build"; "eval"; "hotspot" ]

let test_noop_overhead () =
  (* With no sink installed, with_ must be no more than a closure
     call: run a million of them and insist on a very generous bound
     so the test never flakes on loaded CI.  Earlier suites may have
     installed process-global sinks (every Dispatch.create does);
     drop them so we measure the disabled fast path. *)
  Span.clear_sinks ();
  Alcotest.(check bool) "no sinks installed" false (Span.enabled ());
  let t0 = Unix.gettimeofday () in
  let acc = ref 0 in
  for i = 1 to 1_000_000 do
    acc := Span.with_ ~name:"noop" (fun () -> !acc + i)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "1e6 disabled spans in %.3fs (< 2s)" dt)
    true (dt < 2.0)

(* --- aggregator ---------------------------------------------------- *)

let test_agg_folds_phases () =
  let agg = Agg.create () in
  let sink = Agg.sink agg in
  Span.add_sink sink;
  Fun.protect
    ~finally:(fun () -> Span.remove_sink sink)
    (fun () ->
      Span.with_ ~name:"phase_a" (fun () -> ());
      Span.with_ ~name:"phase_a" (fun () -> ());
      Span.with_ ~name:"phase_b" (fun () -> ()));
  let snap = Agg.snapshot agg in
  let count name =
    match List.assoc_opt name snap with
    | Some s -> s.Hist.count
    | None -> 0
  in
  Alcotest.(check int) "phase_a twice" 2 (count "phase_a");
  Alcotest.(check int) "phase_b once" 1 (count "phase_b");
  Agg.reset agg;
  Alcotest.(check int) "reset drops phases" 0 (List.length (Agg.snapshot agg))

(* --- prometheus renderer ------------------------------------------- *)

let test_prom_render () =
  let h = Hist.create ~bounds:[| 0.01; 0.1 |] () in
  Hist.observe h 0.005;
  Hist.observe h 0.05;
  let text =
    Prom.render
      [
        Prom.Counter
          {
            name = "skope_requests_total";
            help = "Requests.";
            values = [ ([ ("kind", "analyze"); ("outcome", "ok") ], 3.) ];
          };
        Prom.Gauge
          { name = "skope_queue_depth"; help = "Depth."; values = [ ([], 0.) ] };
        Prom.Histogram
          {
            name = "skope_phase_duration_seconds";
            help = "Phases.";
            series = [ ([ ("phase", "eval") ], Hist.snapshot h) ];
          };
      ]
  in
  let has needle =
    Alcotest.(check bool)
      (Printf.sprintf "exposition contains %S" needle)
      true
      (let nl = String.length needle and tl = String.length text in
       let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
       go 0)
  in
  has "# TYPE skope_requests_total counter";
  has "skope_requests_total{kind=\"analyze\",outcome=\"ok\"} 3\n";
  has "# TYPE skope_queue_depth gauge";
  has "skope_queue_depth 0\n";
  has "# TYPE skope_phase_duration_seconds histogram";
  has "skope_phase_duration_seconds_bucket{phase=\"eval\",le=\"0.01\"} 1\n";
  has "skope_phase_duration_seconds_bucket{phase=\"eval\",le=\"+Inf\"} 2\n";
  has "skope_phase_duration_seconds_count{phase=\"eval\"} 2\n"

(* --- metrics registry ---------------------------------------------- *)

let test_metrics_small_n () =
  let m = Metrics.create () in
  Metrics.observe_latency m 0.042;
  let v = Metrics.view m in
  Alcotest.(check int) "one sample" 1 v.Metrics.latency_count;
  feq "p50 of one" 0.042 v.Metrics.p50;
  feq "p99 of one is the sample" 0.042 v.Metrics.p99;
  Metrics.reset m;
  let v = Metrics.view m in
  Alcotest.(check int) "reset zeroes samples" 0 v.Metrics.latency_count;
  Alcotest.(check int) "reset zeroes requests" 0 v.Metrics.total_requests

let test_metrics_gauges () =
  let m = Metrics.create () in
  let depth = ref 7. in
  Metrics.register_gauge m ~name:"skope_queue_depth" ~help:"Depth." (fun () ->
      !depth);
  let v = Metrics.view m in
  (match List.assoc_opt "skope_queue_depth" v.Metrics.gauges with
  | Some g -> feq "gauge sampled" 7. g
  | None -> Alcotest.fail "gauge missing from view");
  depth := 9.;
  let text = Metrics.prom_metrics m in
  Alcotest.(check bool) "gauge resampled in exposition" true
    (let needle = "skope_queue_depth 9\n" in
     let nl = String.length needle and tl = String.length text in
     let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
     go 0)

(* --- structured log ------------------------------------------------ *)

module Log = T.Log

(* Capture log lines for the duration of [f]; restores stderr output
   and the default rate limit afterwards. *)
let with_log_capture f =
  let lines = ref [] in
  Log.set_output (fun l -> lines := l :: !lines);
  Log.set_rate ~burst:0 ~per_s:0.;
  Fun.protect
    ~finally:(fun () ->
      Log.use_stderr ();
      Log.set_rate ~burst:50 ~per_s:10.;
      Log.set_level Log.Info)
    (fun () -> f ());
  List.rev !lines

let test_log_json_valid () =
  let lines =
    with_log_capture (fun () ->
        Log.emit ~level:Log.Warn ~trace_id:"t-1" "fault_injected"
          [
            ("fault", Log.Str "drop\"quoted\"\nline");
            ("seed", Log.I 42);
            ("p", Log.F 0.5);
            ("armed", Log.B true);
          ])
  in
  match lines with
  | [ line ] -> (
    (* The telemetry layer does its own JSON escaping; the report
       layer's parser is the schema referee. *)
    match Json.of_string line with
    | Error msg -> Alcotest.failf "log line is not valid JSON: %s" msg
    | Ok j ->
      Alcotest.(check (option string))
        "level" (Some "warn")
        (Option.bind (Json.member "level" j) Json.to_string_opt);
      Alcotest.(check (option string))
        "event" (Some "fault_injected")
        (Option.bind (Json.member "event" j) Json.to_string_opt);
      Alcotest.(check (option string))
        "trace_id" (Some "t-1")
        (Option.bind (Json.member "trace_id" j) Json.to_string_opt);
      Alcotest.(check bool) "ts present" true (Json.member "ts" j <> None);
      let attrs = Option.get (Json.member "attrs" j) in
      Alcotest.(check (option string))
        "escaped attr survives" (Some "drop\"quoted\"\nline")
        (Option.bind (Json.member "fault" attrs) Json.to_string_opt);
      Alcotest.(check (option int))
        "int attr stays a number" (Some 42)
        (Option.bind (Json.member "seed" attrs) Json.to_int_opt);
      Alcotest.(check bool)
        "bool attr" true
        (Json.member "armed" attrs = Some (Json.Bool true)))
  | l -> Alcotest.failf "expected 1 line, got %d" (List.length l)

let test_log_level_filter () =
  let lines =
    with_log_capture (fun () ->
        Log.set_level Log.Warn;
        Log.emit ~level:Log.Debug "dropped_debug" [];
        Log.emit ~level:Log.Info "dropped_info" [];
        Log.emit ~level:Log.Warn "kept_warn" [];
        Log.emit ~level:Log.Error "kept_error" [])
  in
  Alcotest.(check int) "only warn+error pass" 2 (List.length lines)

let test_log_rate_limit () =
  let lines = ref [] in
  Log.set_output (fun l -> lines := l :: !lines);
  Fun.protect
    ~finally:(fun () ->
      Log.use_stderr ();
      Log.set_rate ~burst:50 ~per_s:10.)
    (fun () ->
      (* Tiny bucket, no refill to speak of: a 100-event storm must
         collapse to ~3 lines, and the next passing line must carry
         the suppressed count. *)
      Log.set_rate ~burst:3 ~per_s:1e-9;
      for _ = 1 to 100 do
        Log.emit "storm" []
      done);
  let n = List.length !lines in
  Alcotest.(check bool) (Printf.sprintf "storm capped (%d lines)" n) true (n <= 4);
  Alcotest.(check bool) "some suppressed counted" true
    (Log.suppressed_total () > 0)

let test_log_levels_roundtrip () =
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Log.level_label l ^ " round-trips")
        true
        (Log.level_of_string (Log.level_label l) = Some l))
    [ Log.Debug; Log.Info; Log.Warn; Log.Error ]

(* --- flight recorder ----------------------------------------------- *)

module Recorder = T.Recorder

let commit_simple r ?(kind = "analyze") ?(outcome = "ok") ?(duration_ms = 1.)
    trace_id =
  Recorder.begin_request r trace_id;
  Recorder.commit r ~trace_id ~kind ~outcome ~start:0. ~duration_ms ()

let test_recorder_ring_wraps () =
  let r = Recorder.create ~capacity:4 () in
  for i = 1 to 10 do
    commit_simple r (Printf.sprintf "t-%d" i)
  done;
  Alcotest.(check int) "length capped" 4 (Recorder.length r);
  Alcotest.(check int) "capacity" 4 (Recorder.capacity r);
  let ids =
    Recorder.recent ~n:10 r |> List.map (fun x -> x.Recorder.trace_id)
  in
  Alcotest.(check (list string))
    "newest first, oldest evicted"
    [ "t-10"; "t-9"; "t-8"; "t-7" ]
    ids;
  Alcotest.(check bool) "evicted not findable" true
    (Recorder.find r "t-1" = None);
  Alcotest.(check bool) "survivor findable" true
    (Recorder.find r "t-9" <> None);
  Recorder.clear r;
  Alcotest.(check int) "clear empties" 0 (Recorder.length r)

let test_recorder_filters () =
  let r = Recorder.create ~capacity:16 () in
  commit_simple r ~outcome:"ok" ~duration_ms:1. "fast-ok";
  commit_simple r ~outcome:"internal_error" ~duration_ms:2. "slow-err";
  commit_simple r ~outcome:"ok" ~duration_ms:50. "slow-ok";
  let ids sel = List.map (fun x -> x.Recorder.trace_id) sel in
  Alcotest.(check (list string))
    "errors only" [ "slow-err" ]
    (ids (Recorder.recent ~errors_only:true r));
  Alcotest.(check (list string))
    "min duration" [ "slow-ok" ]
    (ids (Recorder.recent ~min_duration_ms:10. r));
  Alcotest.(check (list string))
    "n truncates newest-first" [ "slow-ok"; "slow-err" ]
    (ids (Recorder.recent ~n:2 r))

let test_recorder_sink_groups_spans () =
  let r = Recorder.create () in
  let sink = Recorder.sink r in
  Span.add_sink sink;
  Fun.protect
    ~finally:(fun () -> Span.remove_sink sink)
    (fun () ->
      Recorder.begin_request r "grouped";
      Span.with_context ~attrs:[ ("trace_id", "grouped") ] (fun () ->
          Span.with_ ~name:"outer" (fun () ->
              Span.with_ ~name:"inner" (fun () -> ())));
      (* No begin_request, no collection: unrelated spans (or spans
         for a request that was never begun) are dropped. *)
      Span.with_context ~attrs:[ ("trace_id", "never-begun") ] (fun () ->
          Span.with_ ~name:"stray" (fun () -> ()));
      Recorder.commit r ~trace_id:"grouped" ~kind:"analyze" ~outcome:"ok"
        ~start:0. ~duration_ms:1. ());
  match Recorder.find r "grouped" with
  | None -> Alcotest.fail "committed record not found"
  | Some rec_ ->
    let names = List.map (fun s -> s.Span.name) rec_.Recorder.spans in
    Alcotest.(check bool) "outer collected" true (List.mem "outer" names);
    Alcotest.(check bool) "inner collected" true (List.mem "inner" names);
    Alcotest.(check bool) "stray not collected" false (List.mem "stray" names)

let test_recorder_discard () =
  let r = Recorder.create () in
  Recorder.begin_request r "doomed";
  Recorder.discard r "doomed";
  Alcotest.(check int) "nothing recorded" 0 (Recorder.length r)

(* --- dispatch integration ------------------------------------------ *)

let decode body =
  match Json.of_string body with
  | Ok j -> j
  | Error m -> Alcotest.failf "bad response JSON: %s" m

let contains text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
  go 0

let test_dispatch_metrics_prom () =
  let d = Dispatch.create () in
  ignore
    (Dispatch.handle d
       {|{"kind":"analyze","workload":"pedagogical","machine":"bgq"}|});
  ignore
    (Dispatch.handle d
       {|{"kind":"lint","source":"skeleton p { fn main() { flops(1); } }"}|});
  let resp = decode (Dispatch.handle d {|{"kind":"metrics_prom"}|}) in
  Alcotest.(check (option Alcotest.bool))
    "ok" (Some true)
    (Option.bind (Json.member "ok" resp) (function
      | Json.Bool b -> Some b
      | _ -> None));
  let body =
    Option.bind (Json.member "result" resp) (Json.member "body")
    |> Fun.flip Option.bind Json.to_string_opt
    |> Option.get
  in
  (* The acceptance families: per-phase histograms for at least parse,
     lint, bet_build, eval and report. *)
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        (Printf.sprintf "phase %S exposed" phase)
        true
        (contains body
           (Printf.sprintf "skope_phase_duration_seconds_bucket{phase=\"%s\""
              phase)))
    [ "parse"; "lint"; "bet_build"; "eval"; "report"; "request" ];
  Alcotest.(check bool) "requests counter" true
    (contains body "skope_requests_total{kind=\"analyze\",outcome=\"ok\"} 1");
  Alcotest.(check bool) "build info" true (contains body "skope_build_info{");
  Alcotest.(check bool) "lru gauge" true (contains body "skope_lru_entries");
  Alcotest.(check bool) "latency histogram" true
    (contains body "skope_request_latency_seconds_bucket")

let test_dispatch_version () =
  let d = Dispatch.create () in
  let resp = decode (Dispatch.handle d {|{"kind":"version"}|}) in
  let field key =
    Option.bind (Json.member "result" resp) (Json.member key)
    |> Fun.flip Option.bind Json.to_string_opt
  in
  Alcotest.(check (option string))
    "version" (Some Core.Version.version) (field "version");
  Alcotest.(check bool) "git present" true (field "git" <> None);
  Alcotest.(check bool) "describe present" true (field "describe" <> None)

let test_dispatch_phase_stats () =
  let d = Dispatch.create () in
  Metrics.reset d.Dispatch.metrics;
  ignore
    (Dispatch.handle d
       {|{"kind":"analyze","workload":"pedagogical","machine":"bgq"}|});
  let v = Metrics.view d.Dispatch.metrics in
  let phase name =
    match List.assoc_opt name v.Metrics.phases with
    | Some s -> s
    | None -> Alcotest.failf "phase %S missing from metrics view" name
  in
  List.iter
    (fun name ->
      let s = phase name in
      Alcotest.(check bool)
        (name ^ " observed at least once")
        true (s.Hist.count >= 1);
      (* Exact small-n percentile: with one sample p99 = p50. *)
      if s.Hist.count = 1 then feq (name ^ " p99=p50 at n=1") s.Hist.p50 s.Hist.p99)
    [ "bet_build"; "eval"; "report"; "request" ]

let suite =
  [
    ( "telemetry.hist",
      [
        Alcotest.test_case "single sample percentiles" `Quick
          test_hist_single_sample;
        Alcotest.test_case "small sample percentiles" `Quick
          test_hist_small_samples;
        Alcotest.test_case "100-sample percentiles" `Quick
          test_hist_percentiles_100;
        Alcotest.test_case "cumulative buckets + reset" `Quick
          test_hist_cumulative_and_reset;
        Alcotest.test_case "negative clamped" `Quick test_hist_negative_clamped;
      ] );
    ( "telemetry.span",
      [
        Alcotest.test_case "counters" `Quick test_counters;
        Alcotest.test_case "no-op overhead" `Quick test_noop_overhead;
      ] );
    ( "telemetry.chrome",
      [
        Alcotest.test_case "round-trip + nesting" `Quick test_chrome_roundtrip;
        Alcotest.test_case "error span" `Quick test_chrome_error_span;
        Alcotest.test_case "stable pipeline span names" `Quick
          test_chrome_stable_names;
      ] );
    ( "telemetry.agg",
      [ Alcotest.test_case "folds phases" `Quick test_agg_folds_phases ] );
    ( "telemetry.prom",
      [ Alcotest.test_case "exposition format" `Quick test_prom_render ] );
    ( "telemetry.metrics",
      [
        Alcotest.test_case "small-n percentiles + reset" `Quick
          test_metrics_small_n;
        Alcotest.test_case "gauges" `Quick test_metrics_gauges;
      ] );
    ( "telemetry.log",
      [
        Alcotest.test_case "line is valid JSON" `Quick test_log_json_valid;
        Alcotest.test_case "level filter" `Quick test_log_level_filter;
        Alcotest.test_case "rate limit" `Quick test_log_rate_limit;
        Alcotest.test_case "level labels round-trip" `Quick
          test_log_levels_roundtrip;
      ] );
    ( "telemetry.recorder",
      [
        Alcotest.test_case "ring wraps" `Quick test_recorder_ring_wraps;
        Alcotest.test_case "recent filters" `Quick test_recorder_filters;
        Alcotest.test_case "sink groups spans" `Quick
          test_recorder_sink_groups_spans;
        Alcotest.test_case "discard" `Quick test_recorder_discard;
      ] );
    ( "telemetry.dispatch",
      [
        Alcotest.test_case "metrics_prom exposition" `Quick
          test_dispatch_metrics_prom;
        Alcotest.test_case "version request" `Quick test_dispatch_version;
        Alcotest.test_case "per-phase stats" `Quick test_dispatch_phase_stats;
      ] );
  ]
