(* Lint subsystem: interval domain, the abstract-interpretation
   engine's rule coverage on a seeded-defect fixture (text and JSON),
   error-location plumbing from the lexer/parser into rendered
   diagnostics, and the bundled workloads/examples linting clean. *)

open Core
module I = Lint.Interval
module D = Lint.Diagnostic
module E = Lint.Engine
module J = Report.Json

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains out needle =
  Alcotest.(check bool) ("output contains " ^ needle) true
    (contains_sub out needle)

(* --- interval domain ------------------------------------------------- *)

let iv = Alcotest.testable I.pp (fun a b -> a = b)

let test_interval_basics () =
  Alcotest.check iv "make normalizes a swapped range" (I.make 1. 3.)
    (I.make 3. 1.);
  Alcotest.(check (option (float 0.))) "const singleton" (Some 5.)
    (I.const (I.of_int 5));
  Alcotest.(check (option (float 0.))) "const range" None
    (I.const (I.make 1. 2.));
  Alcotest.check iv "join hulls" (I.make (-1.) 7.)
    (I.join (I.make (-1.) 2.) (I.make 5. 7.));
  Alcotest.(check bool) "meet disjoint" true
    (I.meet (I.make 0. 1.) (I.make 2. 3.) = None);
  Alcotest.check iv "clamp_nonneg" (I.make 0. 4.)
    (I.clamp_nonneg (I.make (-2.) 4.))

let test_interval_arith () =
  Alcotest.check iv "mul picks corners" (I.make (-6.) 6.)
    (I.mul (I.make (-2.) 2.) (I.make 1. 3.));
  Alcotest.(check bool) "div by a range containing 0 widens to top" true
    (I.is_top (I.div (I.of_int 1) (I.make (-1.) 1.)));
  Alcotest.check iv "div by a positive range" (I.make 2. 8.)
    (I.div (I.make 4. 8.) (I.make 1. 2.));
  Alcotest.check iv "rem by a positive integer constant" (I.make 0. 6.)
    (I.rem (I.make 0. 100.) (I.of_int 7));
  Alcotest.check iv "sub" (I.make (-2.) 2.)
    (I.sub (I.make 0. 2.) (I.make 0. 2.))

let test_interval_tri () =
  Alcotest.(check bool) "disjoint lt is True" true
    (I.lt (I.make 0. 1.) (I.make 2. 3.) = I.True);
  Alcotest.(check bool) "overlapping lt is Unknown" true
    (I.lt (I.make 0. 2.) (I.make 1. 3.) = I.Unknown);
  Alcotest.(check bool) "equal constants eq True" true
    (I.eq (I.of_int 4) (I.of_int 4) = I.True);
  Alcotest.(check bool) "disjoint eq False" true
    (I.eq (I.of_int 4) (I.of_int 5) = I.False);
  Alcotest.(check bool) "tri_and short-circuits False" true
    (I.tri_and I.False I.Unknown = I.False);
  Alcotest.(check bool) "truthy of 0 is False" true
    (I.truthy (I.of_int 0) = I.False)

(* --- seeded-defect fixture ------------------------------------------- *)

(* One statically broken program exercising every rule code.  Line
   numbers below are load-bearing: the location tests reference them.
   [u] is an entry parameter, so it is bound (no V005) but abstractly
   unknown; [n] is an input. *)
let defect_source =
  String.concat "\n"
    [
      "program defects";               (* 1 *)
      "";                              (* 2 *)
      "array buf[n] : f64";            (* 3 *)
      "";                              (* 4 *)
      "def helper()";                  (* 5 *)
      "{";                             (* 6 *)
      "  comp flops=0";                (* 7: L006; helper itself L007 *)
      "}";                             (* 8 *)
      "";                              (* 9 *)
      "def main(u)";                   (* 10 *)
      "{";                             (* 11 *)
      "  let z = n - n";               (* 12 *)
      "  @empty: for i = 10 to 1 { comp flops=2 }";      (* 13: L001 *)
      "  @bad: for i = 0 to 7 step z { comp flops=2 }";  (* 14: L001 *)
      "  comp flops=n/z";              (* 15: L002 error *)
      "  @maybe: for k = 0 to 2 { comp iops=n/k }";      (* 16: L002 warn *)
      "  if data rare prob 1.5 { comp flops=3 }";        (* 17: L003+L008 *)
      "  load buf[n]";                 (* 18: L004 *)
      "  if (1 == 2) { comp flops=4 }";                  (* 19: L005 *)
      "  while spin prob 1.0 max u { comp flops=5 }";    (* 20: L009 *)
      "  lib send scale 100";          (* 21: L010 *)
      "  lib recv scale 10";           (* 22 *)
      "}";                             (* 23 *)
      "";
    ]

let defect_inputs = [ ("n", Bet.Value.int 64) ]

let lint_defects () =
  let program = Skeleton.Parser.parse ~file:"defects.skope" defect_source in
  Alcotest.(check int) "fixture passes the shallow validator" 0
    (List.length (Skeleton.Validate.check ~inputs:[ "n" ] program));
  E.run ~inputs:defect_inputs program

let all_rules = [ "L001"; "L002"; "L003"; "L004"; "L005"; "L006"; "L007";
                  "L008"; "L009"; "L010" ]

let test_all_rules_fire () =
  let ds = lint_defects () in
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (code ^ " fires on the fixture")
        true
        (List.exists (fun d -> d.D.code = code) ds))
    all_rules

let find_code ds code = List.filter (fun d -> d.D.code = code) ds

let test_severities () =
  let ds = lint_defects () in
  let sev code = (List.hd (find_code ds code)).D.severity in
  Alcotest.(check bool) "L002 const zero divisor is an error" true
    (List.exists (fun d -> d.D.severity = D.Error) (find_code ds "L002"));
  Alcotest.(check bool) "L002 also warns on a maybe-zero divisor" true
    (List.exists (fun d -> d.D.severity = D.Warning) (find_code ds "L002"));
  Alcotest.(check bool) "L001 non-positive step is an error" true
    (List.exists (fun d -> d.D.severity = D.Error) (find_code ds "L001"));
  Alcotest.(check bool) "L003 out-of-range probability is an error" true
    (sev "L003" = D.Error);
  Alcotest.(check bool) "L004 certain overrun is an error" true
    (sev "L004" = D.Error);
  Alcotest.(check bool) "L008 is informational" true (sev "L008" = D.Info);
  Alcotest.(check bool) "L005/L009/L010 are warnings" true
    (List.for_all
       (fun c -> sev c = D.Warning)
       [ "L005"; "L009"; "L010" ])

let test_locations () =
  let ds = lint_defects () in
  let line code =
    match find_code ds code with
    | d :: _ -> d.D.loc.Skeleton.Loc.line
    | [] -> -1
  in
  Alcotest.(check int) "L006 at helper's comp" 7 (line "L006");
  Alcotest.(check int) "L007 anchors at helper's body" 7 (line "L007");
  Alcotest.(check int) "empty-range L001 on line 13" 13 (line "L001");
  Alcotest.(check int) "L003 on the data branch" 17 (line "L003");
  Alcotest.(check int) "L004 on the load" 18 (line "L004");
  Alcotest.(check int) "L005 on the if" 19 (line "L005");
  Alcotest.(check int) "L009 on the while" 20 (line "L009");
  Alcotest.(check int) "L010 on the first send" 21 (line "L010");
  let l5 = List.hd (find_code ds "L005") in
  Alcotest.(check int) "L005 column is the if keyword" 3
    l5.D.loc.Skeleton.Loc.col

let test_text_rendering () =
  let ds = lint_defects () in
  let out = Fmt.str "%a" (D.render_all ~source:defect_source ()) ds in
  List.iter (check_contains out)
    [
      "error[L002]";
      "warning[L005]";
      "info[L008]";
      "--> defects.skope:19:3";
      "if (1 == 2) { comp flops=4 }";  (* source excerpt *)
      "= note: in function `main`";
      "errors,";                        (* summary line *)
    ]

let test_json_rendering () =
  let ds = lint_defects () in
  let json = J.to_string (D.list_to_json ds) in
  match J.of_string json with
  | Error e -> Alcotest.failf "diagnostics JSON does not re-parse: %s" e
  | Ok (J.List items) ->
    Alcotest.(check int) "one JSON object per diagnostic" (List.length ds)
      (List.length items);
    let codes =
      List.filter_map
        (fun item ->
          match J.member "code" item with
          | Some (J.String c) -> Some c
          | _ -> None)
        items
    in
    List.iter
      (fun code ->
        Alcotest.(check bool) (code ^ " present in JSON") true
          (List.mem code codes))
      all_rules;
    List.iter
      (fun item ->
        List.iter
          (fun field ->
            Alcotest.(check bool) ("field " ^ field) true
              (J.member field item <> None))
          [ "code"; "severity"; "file"; "line"; "col"; "message"; "notes" ])
      items
  | Ok _ -> Alcotest.fail "diagnostics JSON is not a list"

let test_rule_config () =
  let program = Skeleton.Parser.parse ~file:"defects.skope" defect_source in
  let config = { E.default_config with E.disabled = all_rules } in
  Alcotest.(check int) "disabling every rule silences the engine" 0
    (List.length (E.run ~config ~inputs:defect_inputs program));
  let only_l4 =
    { E.default_config with
      E.disabled = List.filter (fun c -> c <> "L004") all_rules }
  in
  let ds = E.run ~config:only_l4 ~inputs:defect_inputs program in
  Alcotest.(check bool) "only L004 remains" true
    (ds <> [] && List.for_all (fun d -> d.D.code = "L004") ds)

let test_check_exn_rejects () =
  let program = Skeleton.Parser.parse ~file:"defects.skope" defect_source in
  match E.check_exn ~inputs:defect_inputs program with
  | () -> Alcotest.fail "check_exn accepted a program with lint errors"
  | exception E.Rejected errors ->
    Alcotest.(check bool) "only errors are rejected" true
      (errors <> [] && List.for_all (fun d -> d.D.severity = D.Error) errors)

(* --- soundness: the engine must not cry wolf on sound programs ------- *)

(* The pedagogical example rebinds [knob] inside a data branch; a naive
   block-scoped environment would call `knob == 1` statically false. *)
let test_no_false_dead_branch_across_contexts () =
  let program, inputs = Workloads.Pedagogical.make ~scale:1.0 in
  let ds = E.run ~inputs program in
  Alcotest.(check (list string)) "no L005/L004 on pedagogical" []
    (List.filter_map
       (fun d ->
         if d.D.code = "L005" || d.D.code = "L004" then Some d.D.message
         else None)
       ds)

(* Loop-carried rebinds must widen, not propagate first-iteration
   constants (which would fabricate dead branches). *)
let test_loop_widening () =
  let src =
    String.concat "\n"
      [
        "program widen";
        "def main()";
        "{";
        "  let x = 0";
        "  for i = 1 to 8 {";
        "    if (x == 0) { comp flops=1 } else { comp flops=2 }";
        "    let x = x + 1";
        "  }";
        "}";
        "";
      ]
  in
  let program = Skeleton.Parser.parse ~file:"widen.skope" src in
  let ds = E.run program in
  Alcotest.(check (list string)) "no dead branch reported" []
    (List.filter_map
       (fun d -> if d.D.code = "L005" then Some d.D.message else None)
       ds)

(* The engine subsumes Validate's literal-only checks: a zero step
   reached through a let-binding escapes the validator but not L001. *)
let test_subsumes_validate () =
  let src =
    String.concat "\n"
      [
        "program sneaky";
        "def main()";
        "{";
        "  let z = 2 - 2";
        "  for i = 0 to 9 step z { comp flops=1 }";
        "}";
        "";
      ]
  in
  let program = Skeleton.Parser.parse ~file:"sneaky.skope" src in
  Alcotest.(check int) "validator is blind to the computed step" 0
    (List.length (Skeleton.Validate.check program));
  Alcotest.(check bool) "lint flags it as L001" true
    (List.exists
       (fun d -> d.D.code = "L001" && d.D.severity = D.Error)
       (E.run program))

(* --- lexer/parser locations end-to-end ------------------------------- *)

let test_lex_error_location () =
  let src =
    String.concat "\n"
      [ "program p"; "def main()"; "{"; "  comp flops=$3"; "}"; "" ]
  in
  match Skeleton.Parser.parse ~file:"lex.skope" src with
  | _ -> Alcotest.fail "lexer accepted '$'"
  | exception Skeleton.Lexer.Error (loc, msg) ->
    Alcotest.(check int) "line" 4 loc.Skeleton.Loc.line;
    Alcotest.(check int) "col" 14 loc.Skeleton.Loc.col;
    let d = D.of_lex_error loc msg in
    Alcotest.(check string) "code" "P001" d.D.code;
    let out = Fmt.str "%a" (D.render ~source:src ()) d in
    List.iter (check_contains out)
      [ "error[P001]"; "--> lex.skope:4:14"; "comp flops=$3" ]

let test_parse_error_location () =
  let src =
    String.concat "\n"
      [
        "program p";
        "";
        "def main()";
        "{";
        "  for i = 0 to 9 {";
        "    comp flops=1";
        "  }";
        "  frobnicate x";
        "}";
        "";
      ]
  in
  match Skeleton.Parser.parse ~file:"parse.skope" src with
  | _ -> Alcotest.fail "parser accepted an unknown statement"
  | exception Skeleton.Parser.Error (loc, msg) ->
    Alcotest.(check int) "line" 8 loc.Skeleton.Loc.line;
    Alcotest.(check int) "col" 3 loc.Skeleton.Loc.col;
    let d = D.of_parse_error loc msg in
    Alcotest.(check string) "code" "P002" d.D.code;
    let out = Fmt.str "%a" (D.render ~source:src ()) d in
    check_contains out "--> parse.skope:8:3"

(* --- fleet hygiene: bundled models and examples lint clean ----------- *)

let deny_warnings_failures ds =
  List.filter (fun d -> d.D.severity <> D.Info) ds
  |> List.map (fun d -> Fmt.str "%s: %s" d.D.code d.D.message)

let test_workloads_lint_clean () =
  List.iter
    (fun (w : Workloads.Registry.t) ->
      let program, inputs = w.Workloads.Registry.make ~scale:w.default_scale in
      let validation =
        Skeleton.Validate.check ~inputs:(List.map fst inputs) program
      in
      let ds = List.map D.of_validate validation @ E.run ~inputs program in
      Alcotest.(check (list string))
        (w.Workloads.Registry.name ^ " lints clean under --deny warnings")
        []
        (deny_warnings_failures ds))
    Workloads.Registry.all

let example_inputs =
  [
    ( "heat2d.skope",
      [ ("n", Bet.Value.int 512); ("maxiter", Bet.Value.int 100) ] );
    ( "nbody.skope",
      [ ("nbody", Bet.Value.int 4096); ("nsteps", Bet.Value.int 10) ] );
  ]

let test_examples_lint_clean () =
  (* `dune runtest` runs in _build/default/test; `dune exec` in the
     project root. *)
  let dir =
    List.find Sys.file_exists
      [ "../examples/skeletons"; "examples/skeletons" ]
  in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".skope")
    |> List.sort String.compare
  in
  Alcotest.(check bool) "examples present" true (List.length files >= 2);
  List.iter
    (fun file ->
      let inputs =
        Option.value ~default:[] (List.assoc_opt file example_inputs)
      in
      let program = Skeleton.Parser.parse_file (Filename.concat dir file) in
      let validation =
        Skeleton.Validate.check ~inputs:(List.map fst inputs) program
      in
      let ds = List.map D.of_validate validation @ E.run ~inputs program in
      Alcotest.(check (list string))
        (file ^ " lints clean under --deny warnings")
        []
        (deny_warnings_failures ds))
    files

let suite =
  [
    ( "lint.interval",
      [
        Alcotest.test_case "basics" `Quick test_interval_basics;
        Alcotest.test_case "arithmetic" `Quick test_interval_arith;
        Alcotest.test_case "three-valued comparisons" `Quick test_interval_tri;
      ] );
    ( "lint.rules",
      [
        Alcotest.test_case "all ten rules fire" `Quick test_all_rules_fire;
        Alcotest.test_case "severities" `Quick test_severities;
        Alcotest.test_case "locations" `Quick test_locations;
        Alcotest.test_case "text rendering" `Quick test_text_rendering;
        Alcotest.test_case "json rendering" `Quick test_json_rendering;
        Alcotest.test_case "rule enable/disable" `Quick test_rule_config;
        Alcotest.test_case "check_exn rejects errors" `Quick
          test_check_exn_rejects;
      ] );
    ( "lint.soundness",
      [
        Alcotest.test_case "context forking is respected" `Quick
          test_no_false_dead_branch_across_contexts;
        Alcotest.test_case "loop-carried rebinds widen" `Quick
          test_loop_widening;
        Alcotest.test_case "subsumes the literal validator" `Quick
          test_subsumes_validate;
      ] );
    ( "lint.locations",
      [
        Alcotest.test_case "lexer error location" `Quick
          test_lex_error_location;
        Alcotest.test_case "parser error location" `Quick
          test_parse_error_location;
      ] );
    ( "lint.fleet",
      [
        Alcotest.test_case "workloads lint clean" `Quick
          test_workloads_lint_clean;
        Alcotest.test_case "examples lint clean" `Quick
          test_examples_lint_clean;
      ] );
  ]
