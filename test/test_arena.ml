(* Tests for the arena BET engine: structural invariants of the
   flattened arena, bit-for-bit equivalence with the tree engine
   across the whole bundled fleet, batch and delta re-pricing, the
   v2 cache fingerprint, and wire-level engine selection. *)

module Json = Core.Report.Json
module Service = Skope_service
module Explore = Skope_explore.Explore
module P = Core.Pipeline
module Arena = Core.Bet.Arena
module Designspace = Core.Hw.Designspace
module Machine = Core.Hw.Machine
module Machines = Core.Hw.Machines
module Registry = Core.Workloads.Registry
module Perf = Core.Analysis.Perf
module Roofline = Core.Hw.Roofline
module Hotspot = Core.Analysis.Hotspot

let bgq () = Option.get (Machines.find "bgq")
let sord () = Option.get (Registry.find "sord")

let handle ?(dispatch = Service.Dispatch.create ()) body =
  Service.Dispatch.handle dispatch body

let result_of response =
  match Json.of_string response with
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e response
  | Ok r -> (
    match (Json.member "ok" r, Json.member "result" r) with
    | Some (Json.Bool true), Some result -> result
    | _ -> Alcotest.failf "expected ok response: %s" response)

let error_of response =
  match Json.of_string response with
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e response
  | Ok r -> (
    match Json.member "ok" r with
    | Some (Json.Bool true) -> Alcotest.failf "expected error: %s" response
    | _ ->
      let err = Option.get (Json.member "error" r) in
      let str key =
        match Json.member key err with
        | Some (Json.String s) -> s
        | _ -> Alcotest.failf "error without %s: %s" key response
      in
      (str "code", str "message"))

(* Engine-equivalence checks compare the *whole* outcome structurally:
   every Blockstat field (times, work, bound, note) and the full
   hot-spot selection, not just totals. *)
let check_outcomes_equal label (t : P.Prepared.outcome)
    (a : P.Prepared.outcome) =
  Alcotest.(check (float 0.))
    (label ^ ": total time")
    t.P.Prepared.o_total_time a.P.Prepared.o_total_time;
  Alcotest.(check bool)
    (label ^ ": blocks bit-identical")
    true
    (t.P.Prepared.o_blocks = a.P.Prepared.o_blocks);
  Alcotest.(check bool)
    (label ^ ": selection identical")
    true
    (t.P.Prepared.o_selection = a.P.Prepared.o_selection)

(* --- arena structure ----------------------------------------------- *)

let test_arena_invariants () =
  List.iter
    (fun (w : Registry.t) ->
      let prepared =
        P.Prepared.create ~workload:w ~scale:w.Registry.default_scale ()
      in
      let built = P.Prepared.built prepared in
      let a = Arena.of_build built in
      (match Arena.check a with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: arena invariant: %s" w.Registry.name msg);
      Alcotest.(check int)
        (w.Registry.name ^ ": node count")
        built.Core.Bet.Build.node_count (Arena.node_count a);
      Alcotest.(check int)
        (w.Registry.name ^ ": root is last slot")
        (a.Arena.n - 1) a.Arena.root;
      Alcotest.(check int)
        (w.Registry.name ^ ": pre_order covers every slot")
        a.Arena.n
        (Array.length a.Arena.pre_order))
    Registry.all

let test_dep_masks () =
  let zero = Core.Bet.Work.zero in
  Alcotest.(check int) "zero work depends on nothing" 0
    (Arena.deps_of_work zero);
  let flops = { zero with Core.Bet.Work.flops = 4. } in
  let d = Arena.deps_of_work flops in
  Alcotest.(check bool) "flops -> freq" true (d land Arena.dep_freq <> 0);
  Alcotest.(check bool) "flops -> cpu" true (d land Arena.dep_cpu <> 0);
  Alcotest.(check bool) "pure flops not mem" true (d land Arena.dep_mem = 0);
  let loads =
    { zero with Core.Bet.Work.loads = 8.; Core.Bet.Work.lbytes = 64. }
  in
  let d = Arena.deps_of_work loads in
  Alcotest.(check bool) "loads -> mem" true (d land Arena.dep_mem <> 0);
  Alcotest.(check bool) "loads -> geom" true (d land Arena.dep_geom <> 0);
  Alcotest.(check bool) "pure loads not div" true (d land Arena.dep_div = 0)

(* --- engine equivalence -------------------------------------------- *)

(* The acceptance bar: every bundled workload, on every bundled
   machine, under both cache models, prices bit-for-bit identically
   through the two engines. *)
let test_fleet_identical () =
  List.iter
    (fun (w : Registry.t) ->
      let scale = w.Registry.default_scale in
      let tree = P.Prepared.create ~workload:w ~scale () in
      let arena = P.Prepared.create ~engine:P.Arena ~workload:w ~scale () in
      List.iter
        (fun (m : Machine.t) ->
          List.iter
            (fun cache ->
              let label =
                Fmt.str "%s on %s (%s)" w.Registry.name m.Machine.name
                  (match cache with
                  | Perf.Constant -> "constant"
                  | Perf.Footprint -> "footprint")
              in
              let t = P.Prepared.project ~cache tree m in
              let a = P.Prepared.project ~cache arena m in
              check_outcomes_equal label t a)
            [ Perf.Constant; Perf.Footprint ])
        Machines.all)
    Registry.all

let test_batch_matches_mapped () =
  let w = sord () in
  let arena =
    P.Prepared.create ~engine:P.Arena ~workload:w
      ~scale:w.Registry.default_scale ()
  in
  let axes =
    [
      Designspace.Frequency [ 0.8; 1.6; 3.2 ];
      Designspace.Mem_bandwidth [ 7.; 14.; 28. ];
      Designspace.Vector_width [ 2; 8 ];
    ]
  in
  let machines =
    Explore.grid_points (bgq ()) axes
    |> List.map (fun (p : Designspace.point) -> p.Designspace.p_machine)
    |> Array.of_list
  in
  let batch = P.Prepared.project_batch arena machines in
  Alcotest.(check int) "one outcome per machine" (Array.length machines)
    (Array.length batch);
  Array.iteri
    (fun i m ->
      let solo = P.Prepared.project arena m in
      check_outcomes_equal (Fmt.str "batch point %d" i) solo batch.(i))
    machines

(* A randomized single-axis walk: the delta path must agree with a
   full re-price (and with the tree engine) at every step, whatever
   axis moved last. *)
let test_delta_matches_full () =
  let w = sord () in
  let scale = w.Registry.default_scale in
  let tree = P.Prepared.create ~workload:w ~scale () in
  let arena = P.Prepared.create ~engine:P.Arena ~workload:w ~scale () in
  let rng = Random.State.make [| 42 |] in
  let step (m : Machine.t) =
    let pick l = List.nth l (Random.State.int rng (List.length l)) in
    match Random.State.int rng 6 with
    | 0 -> { m with Machine.freq_ghz = pick [ 0.8; 1.2; 1.6; 3.2 ] }
    | 1 -> { m with Machine.issue_width = pick [ 1.; 2.; 4.; 8. ] }
    | 2 -> { m with Machine.mem_bw_gbs = pick [ 7.; 14.; 28.; 56. ] }
    | 3 -> { m with Machine.vector_width = List.nth [ 1; 2; 4; 8 ]
                      (Random.State.int rng 4) }
    | 4 -> { m with Machine.mem_latency_cycles = pick [ 40.; 107.; 214. ] }
    | _ -> { m with Machine.div_latency = pick [ 10.; 32.; 69. ] }
  in
  let m = ref (bgq ()) in
  let prev = ref (P.Prepared.project arena !m) in
  for i = 1 to 40 do
    m := step !m;
    let full = P.Prepared.project arena !m in
    let delta = P.Prepared.project_delta ~prev:!prev arena !m in
    check_outcomes_equal (Fmt.str "walk step %d (full vs delta)" i) full delta;
    check_outcomes_equal
      (Fmt.str "walk step %d (tree vs delta)" i)
      (P.Prepared.project tree !m)
      delta;
    prev := delta
  done

(* The 4^5 = 1024-point grid, priced by the arena engine on a 4-domain
   pool with per-chunk delta chains, must reproduce the sequential
   tree walk exactly. *)
let test_grid_pool_equivalence () =
  let w = sord () in
  let scale = 0.1 in
  let axes =
    [
      Designspace.Frequency [ 0.8; 1.2; 1.6; 3.2 ];
      Designspace.Issue_width [ 1.; 2.; 4.; 8. ];
      Designspace.Mem_bandwidth [ 7.; 14.; 28.; 56. ];
      Designspace.Vector_width [ 1; 2; 4; 8 ];
      Designspace.Mem_latency [ 40.; 80.; 160.; 320. ];
    ]
  in
  let pts = Explore.grid_points (bgq ()) axes in
  Alcotest.(check int) "1024 points" 1024 (List.length pts);
  let tree = P.Prepared.create ~workload:w ~scale () in
  let arena = P.Prepared.create ~engine:P.Arena ~workload:w ~scale () in
  let rt = Explore.evaluate ~jobs:1 tree pts in
  let ra = Explore.evaluate ~jobs:4 arena pts in
  List.iter2
    (fun (a : Explore.point) (b : Explore.point) ->
      Alcotest.(check string) "grid order" a.Explore.tag b.Explore.tag;
      Alcotest.(check (float 0.))
        (a.Explore.tag ^ " time") a.Explore.time b.Explore.time;
      Alcotest.(check bool)
        (a.Explore.tag ^ " blocks")
        true
        (a.Explore.outcome.P.Prepared.o_blocks
        = b.Explore.outcome.P.Prepared.o_blocks))
    rt.Explore.points ra.Explore.points;
  Alcotest.(check (list string))
    "same pareto"
    (List.map (fun (p : Explore.point) -> p.Explore.tag) rt.Explore.pareto)
    (List.map (fun (p : Explore.point) -> p.Explore.tag) ra.Explore.pareto)

(* --- fingerprint coverage ------------------------------------------ *)

(* Any two requests differing in an evaluation-affecting field must
   get distinct fingerprints: every machine parameter (including each
   cache-level field), scale, criteria, top and engine. *)
let test_fingerprint_covers_schema () =
  let base = bgq () in
  let fp ?(workload = "sord") ?(machine = base) ?(scale = 1.0)
      ?(criteria = Hotspot.default_criteria) ?(top = 10) ?(engine = "tree") ()
      =
    Service.Fingerprint.of_query ~workload ~machine ~scale ~criteria ~top
      ~engine
  in
  let l1 = base.Machine.l1 and l2 = base.Machine.l2 in
  let variants =
    [
      ("base", fp ());
      ("workload", fp ~workload:"srad" ());
      ("scale", fp ~scale:2.0 ());
      ("top", fp ~top:5 ());
      ( "coverage",
        fp ~criteria:{ Hotspot.default_criteria with time_coverage = 0.5 } ()
      );
      ( "leanness",
        fp ~criteria:{ Hotspot.default_criteria with code_leanness = 0.2 } ()
      );
      ("engine", fp ~engine:"arena" ());
      ("freq", fp ~machine:{ base with Machine.freq_ghz = 9.9 } ());
      ("issue", fp ~machine:{ base with Machine.issue_width = 9. } ());
      ("vec", fp ~machine:{ base with Machine.vector_width = 16 } ());
      ("fma", fp ~machine:{ base with Machine.fma = not base.Machine.fma } ());
      ( "flop_issue",
        fp ~machine:{ base with Machine.flop_issue_per_cycle = 9. } () );
      ("div", fp ~machine:{ base with Machine.div_latency = 99. } ());
      ("vec_eff", fp ~machine:{ base with Machine.vec_efficiency = 0.123 } ());
      ("mem_lat", fp ~machine:{ base with Machine.mem_latency_cycles = 9. } ());
      ("mem_bw", fp ~machine:{ base with Machine.mem_bw_gbs = 9. } ());
      ("mlp", fp ~machine:{ base with Machine.mlp = 9. } ());
      ( "l1_size",
        fp
          ~machine:
            { base with Machine.l1 = { l1 with Machine.size_bytes = 123 } }
          () );
      ( "l1_line",
        fp
          ~machine:
            { base with Machine.l1 = { l1 with Machine.line_bytes = 123 } }
          () );
      ( "l1_assoc",
        fp ~machine:{ base with Machine.l1 = { l1 with Machine.assoc = 3 } } ()
      );
      ( "l1_lat",
        fp
          ~machine:
            { base with Machine.l1 = { l1 with Machine.latency_cycles = 9. } }
          () );
      ( "l2_size",
        fp
          ~machine:
            { base with Machine.l2 = { l2 with Machine.size_bytes = 123 } }
          () );
      ( "l2_line",
        fp
          ~machine:
            { base with Machine.l2 = { l2 with Machine.line_bytes = 123 } }
          () );
      ( "l2_lat",
        fp
          ~machine:
            { base with Machine.l2 = { l2 with Machine.latency_cycles = 9. } }
          () );
    ]
  in
  let digests = List.map snd variants in
  Alcotest.(check int)
    "every evaluation-affecting field perturbs the fingerprint"
    (List.length variants)
    (List.length (List.sort_uniq compare digests))

(* --- wire-level engine selection ----------------------------------- *)

let explore_body engine =
  match engine with
  | None ->
    {|{"kind":"explore","workload":"sord","machine":"bgq","axes":[{"axis":"bw","values":[7,14]},{"axis":"freq","values":[0.8,1.6]}]}|}
  | Some e ->
    Printf.sprintf
      {|{"kind":"explore","workload":"sord","machine":"bgq","axes":[{"axis":"bw","values":[7,14]},{"axis":"freq","values":[0.8,1.6]}],"engine":%S}|}
      e

let points_of result =
  match Json.member "points" result with
  | Some (Json.List ps) -> ps
  | _ -> Alcotest.failf "no points in %s" (Json.to_string result)

let test_engine_parse () =
  (match Service.Protocol.parse_request (explore_body (Some "arena")) with
  | Ok (Service.Protocol.Explore (q, _), _) ->
    Alcotest.(check bool) "engine parsed" true
      (q.Service.Protocol.engine = Some P.Arena)
  | _ -> Alcotest.fail "explore with engine did not parse");
  (match Service.Protocol.parse_request (explore_body None) with
  | Ok (Service.Protocol.Explore (q, _), _) ->
    Alcotest.(check bool) "engine defaults to None" true
      (q.Service.Protocol.engine = None)
  | _ -> Alcotest.fail "explore without engine did not parse");
  (* typed builder round trip *)
  let module A = Service.Service_api in
  match
    Service.Protocol.parse_request
      (A.to_body
         (A.explore
            ~opts:{ A.default_query_opts with A.engine = Some "arena" }
            ~workload:"sord" ~machine:"bgq"
            ~axes:[ ("bw", [ 7.; 14. ]) ]
            ()))
  with
  | Ok (Service.Protocol.Explore (q, _), _) ->
    Alcotest.(check bool) "builder carries engine" true
      (q.Service.Protocol.engine = Some P.Arena)
  | _ -> Alcotest.fail "service_api engine did not round trip"

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_engine_rejected () =
  let code, msg = error_of (handle (explore_body (Some "warp"))) in
  Alcotest.(check string) "unknown engine" "invalid_request" code;
  Alcotest.(check bool) ("names the engine: " ^ msg) true
    (contains msg "warp" && contains msg "arena")

let test_engine_echoed () =
  let result = result_of (handle (explore_body (Some "arena"))) in
  Alcotest.(check bool) "explore echoes engine" true
    (Json.member "engine" result = Some (Json.String "arena"));
  let default = result_of (handle (explore_body None)) in
  Alcotest.(check bool) "default engine is tree" true
    (Json.member "engine" default = Some (Json.String "tree"));
  let sweep =
    result_of
      (handle
         {|{"kind":"sweep","workload":"sord","machine":"bgq","axis":"bw","values":[7,14],"engine":"arena"}|})
  in
  Alcotest.(check bool) "sweep echoes engine" true
    (Json.member "engine" sweep = Some (Json.String "arena"))

let test_engine_wire_identity () =
  (* Tree and arena responses differ only in the echoed engine: the
     point lists are byte-identical. *)
  let pts engine =
    List.map Json.to_string
      (points_of (result_of (handle (explore_body (Some engine)))))
  in
  Alcotest.(check (list string)) "points byte-identical" (pts "tree")
    (pts "arena")

let test_capabilities_engines () =
  let result = result_of (handle {|{"kind":"capabilities"}|}) in
  match Json.member "bet_engines" result with
  | Some (Json.List l) ->
    Alcotest.(check (list string))
      "advertised engines" [ "tree"; "arena" ]
      (List.filter_map (function Json.String s -> Some s | _ -> None) l)
  | _ -> Alcotest.fail "capabilities missing bet_engines"

let suite =
  [
    ( "arena.structure",
      [
        Alcotest.test_case "invariants over the fleet" `Quick
          test_arena_invariants;
        Alcotest.test_case "dependency masks" `Quick test_dep_masks;
      ] );
    ( "arena.equivalence",
      [
        Alcotest.test_case "fleet bit-for-bit" `Quick test_fleet_identical;
        Alcotest.test_case "batch matches mapped project" `Quick
          test_batch_matches_mapped;
        Alcotest.test_case "delta matches full on a random walk" `Quick
          test_delta_matches_full;
        Alcotest.test_case "1024-point grid under the pool" `Quick
          test_grid_pool_equivalence;
      ] );
    ( "arena.fingerprint",
      [
        Alcotest.test_case "covers the request schema" `Quick
          test_fingerprint_covers_schema;
      ] );
    ( "arena.protocol",
      [
        Alcotest.test_case "engine parse" `Quick test_engine_parse;
        Alcotest.test_case "unknown engine rejected" `Quick
          test_engine_rejected;
        Alcotest.test_case "engine echoed" `Quick test_engine_echoed;
        Alcotest.test_case "tree/arena wire identity" `Quick
          test_engine_wire_identity;
        Alcotest.test_case "capabilities advertise engines" `Quick
          test_capabilities_engines;
      ] );
  ]
