(* Aggregated alcotest entry point; suites live in the test_* modules. *)

let () =
  Alcotest.run "skope"
    (List.concat
       [
         Test_skeleton.suite;
         Test_bet.suite;
         Test_hw.suite;
         Test_analysis.suite;
         Test_sim.suite;
         Test_workloads.suite;
         Test_frontend.suite;
         Test_pipeline.suite;
         Test_extensions.suite;
         Test_report.suite;
         Test_more.suite;
         Test_lint.suite;
         Test_audit.suite;
         Test_shapes.suite;
         Test_props.suite;
         Test_service.suite;
         Test_explore.suite;
         Test_arena.suite;
         Test_telemetry.suite;
         Test_cluster.suite;
         Test_gen.suite;
       ])
